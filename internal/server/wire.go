package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"time"

	gsketch "github.com/graphstream/gsketch"
	"github.com/graphstream/gsketch/internal/cluster"
	"github.com/graphstream/gsketch/internal/core"
	"github.com/graphstream/gsketch/internal/obs"
	"github.com/graphstream/gsketch/internal/stream"
	"github.com/graphstream/gsketch/internal/tenant"
	"github.com/graphstream/gsketch/internal/wire"
)

// The binary wire protocol endpoint: the same ingest/query/flush
// operations as the HTTP/JSON API, framed as fixed-width records (see
// internal/wire) and served over a raw TCP listener. Each connection runs
// a two-stage pipeline — a decode goroutine parses frame k+1 while the
// apply goroutine scatters frame k into the engine — so parsing and
// counter updates overlap instead of alternating.

// wirePipelineDepth is the decoded-frame channel bound per connection:
// deep enough to keep the apply stage fed, shallow enough that a slow
// consumer backpressures the decoder (and through it, the TCP window).
const wirePipelineDepth = 4

// wireIOBuf is the per-connection bufio size on both directions.
const wireIOBuf = 64 << 10

// wireJob is one decoded frame travelling between the two pipeline
// stages. Exactly one of edges/qs is set for work frames; tenant carries
// a TypeTenantSelect name (copied out of the decoder's buffer before
// crossing the channel — the payload aliases it); a terminal job carries
// err (io.EOF for a clean end of stream) and ends the connection.
type wireJob struct {
	typ    byte
	edges  *[]stream.Edge
	qs     *[]core.EdgeQuery
	tenant string
	err    error
}

// ServeWire accepts wire-protocol connections on ln until Shutdown, which
// closes the listener and every open connection. Like Serve, it returns
// http.ErrServerClosed after a graceful shutdown.
func (s *Server) ServeWire(ln net.Listener) error {
	s.wireMu.Lock()
	if s.closing.Load() {
		s.wireMu.Unlock()
		ln.Close()
		return http.ErrServerClosed
	}
	s.wireLns[ln] = struct{}{}
	s.wireMu.Unlock()
	defer func() {
		s.wireMu.Lock()
		delete(s.wireLns, ln)
		s.wireMu.Unlock()
	}()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.closing.Load() {
				return http.ErrServerClosed
			}
			return err
		}
		s.wireMu.Lock()
		if s.closing.Load() {
			s.wireMu.Unlock()
			conn.Close()
			return http.ErrServerClosed
		}
		s.wireConns[conn] = struct{}{}
		s.wireWg.Add(1)
		s.wireMu.Unlock()
		go func() {
			defer s.wireWg.Done()
			defer func() {
				s.wireMu.Lock()
				delete(s.wireConns, conn)
				s.wireMu.Unlock()
			}()
			s.handleWireConn(conn)
		}()
	}
}

// ListenAndServeWire binds addr and serves the wire protocol until
// Shutdown.
func (s *Server) ListenAndServeWire(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.ServeWire(ln)
}

// closeWire stops the wire listeners and connections during Shutdown.
func (s *Server) closeWire() {
	s.wireMu.Lock()
	for ln := range s.wireLns {
		ln.Close()
	}
	for conn := range s.wireConns {
		conn.Close()
	}
	s.wireMu.Unlock()
	s.wireWg.Wait()
}

// varReader counts bytes read into a registry counter.
type varReader struct {
	r io.Reader
	n *obs.Counter
}

func (v varReader) Read(p []byte) (int, error) {
	n, err := v.r.Read(p)
	if n > 0 {
		v.n.Add(int64(n))
	}
	return n, err
}

// varWriter counts bytes written into a registry counter.
type varWriter struct {
	w io.Writer
	n *obs.Counter
}

func (v varWriter) Write(p []byte) (int, error) {
	n, err := v.w.Write(p)
	if n > 0 {
		v.n.Add(int64(n))
	}
	return n, err
}

// handleWireConn runs one connection's two-stage pipeline. The decode
// goroutine owns the read half: it parses frames into pooled record
// buffers and hands them over a bounded channel, so decoding the next
// frame overlaps applying the current one. The apply loop (this
// goroutine) owns the write half: it scatters ingest batches into the
// engine, answers queries, and streams replies through a buffered writer
// flushed whenever the pipeline momentarily empties.
//
// In tenant mode the connection starts unbound: a TypeTenantSelect frame
// binds the session backend (re-selecting switches it), and work frames
// before any select are refused with CodeUnsupported — the connection
// stays open, like every other error frame.
func (s *Server) handleWireConn(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReaderSize(varReader{r: conn, n: s.stats.wireBytesIn}, wireIOBuf)
	bw := bufio.NewWriterSize(varWriter{w: conn, n: s.stats.wireBytesOut}, wireIOBuf)

	jobs := make(chan wireJob, wirePipelineDepth)
	go s.wireDecodeLoop(br, jobs)

	be := s.be // nil in tenant mode until a TypeTenantSelect binds one
	out := getFrameBuf()
	defer putFrameBuf(out)
	var werr error // first write failure; later jobs only recycle buffers
	for job := range jobs {
		if job.err != nil {
			if job.err != io.EOF && werr == nil {
				s.stats.wireDecodeErrors.Add(1)
				*out = wire.AppendError((*out)[:0], wire.CodeBadFrame, job.err.Error())
				if _, err := bw.Write(*out); err == nil {
					bw.Flush()
				}
			}
			break // terminal: the decode loop closes jobs after it
		}
		if werr != nil {
			s.recycleWireJob(job)
			continue
		}
		*out = (*out)[:0]
		start := time.Now()
		switch {
		case job.typ == wire.TypeTenantSelect:
			be, *out = s.applyWireTenantSelect(*out, job.tenant, be)
		case be == nil:
			*out = wire.AppendError(*out, wire.CodeUnsupported,
				"no tenant selected (send a tenant-select frame first)")
		default:
			switch job.typ {
			case wire.TypeIngest:
				*out = s.applyWireIngest(*out, be, *job.edges)
			case wire.TypeQuery:
				*out = s.applyWireQuery(*out, be, *job.qs)
			case wire.TypeFlush:
				*out = s.applyWireFlush(*out, be)
			case wire.TypePing:
				*out = s.applyWirePing(*out, be)
			case wire.TypeSnapSave:
				*out = s.applyWireSnapSave(*out, be)
			case wire.TypeSnapRestore:
				*out = s.applyWireSnapRestore(*out, be)
			}
		}
		// The apply histogram child was resolved at registration; the
		// observation is two clock reads and three atomic adds, keeping
		// the hot loop allocation-free.
		if h := s.metrics.wireApply[job.typ]; h != nil {
			h.ObserveSince(start)
		}
		s.recycleWireJob(job)
		if _, err := bw.Write(*out); err != nil {
			werr = err
			continue
		}
		// Flush only when no decoded frame is waiting: consecutive
		// requests coalesce into one TCP write, a lone request replies
		// immediately.
		if len(jobs) == 0 {
			if err := bw.Flush(); err != nil {
				werr = err
			}
		}
	}
	bw.Flush()
}

// wireDecodeLoop is the first pipeline stage: it parses frames off the
// connection into pooled buffers and forwards them. On any terminal
// condition it sends one err-carrying job and closes the channel.
func (s *Server) wireDecodeLoop(r io.Reader, jobs chan<- wireJob) {
	defer close(jobs)
	dec := wire.NewDecoderSize(r, int(s.cfg.MaxBodyBytes))
	for {
		f, err := dec.Next()
		if err != nil {
			jobs <- wireJob{err: err}
			return
		}
		s.stats.wireFrames.Add(1)
		// The decode histogram covers payload → records parsing, not the
		// network wait inside dec.Next — an idle connection must not
		// register as slow decoding.
		switch f.Type {
		case wire.TypeIngest:
			buf := getEdgeBuf()
			start := time.Now()
			*buf, err = wire.DecodeEdges((*buf)[:0], f.Payload)
			if err != nil {
				putEdgeBuf(buf)
				jobs <- wireJob{err: err}
				return
			}
			s.metrics.wireDecode.ObserveSince(start)
			jobs <- wireJob{typ: f.Type, edges: buf}
		case wire.TypeQuery:
			buf := getQueryBuf()
			start := time.Now()
			*buf, err = wire.DecodeQueries((*buf)[:0], f.Payload)
			if err != nil {
				putQueryBuf(buf)
				jobs <- wireJob{err: err}
				return
			}
			s.metrics.wireDecode.ObserveSince(start)
			jobs <- wireJob{typ: f.Type, qs: buf}
		case wire.TypeTenantSelect:
			// DecodeTenantSelect copies the name out of the decoder's
			// buffer — the payload is invalid once the next frame is read.
			name, err := wire.DecodeTenantSelect(f.Payload)
			if err != nil {
				jobs <- wireJob{err: err}
				return
			}
			jobs <- wireJob{typ: f.Type, tenant: name}
		case wire.TypeFlush, wire.TypePing, wire.TypeSnapSave, wire.TypeSnapRestore:
			jobs <- wireJob{typ: f.Type}
		default:
			jobs <- wireJob{err: fmt.Errorf("%w: client sent reply type 0x%02x", wire.ErrUnknownType, f.Type)}
			return
		}
	}
}

func (s *Server) recycleWireJob(job wireJob) {
	if job.edges != nil {
		putEdgeBuf(job.edges)
	}
	if job.qs != nil {
		putQueryBuf(job.qs)
	}
}

// applyWireTenantSelect resolves a tenant-select frame against the
// registry and returns the (possibly re-bound) session backend plus the
// reply frame. On a non-tenant server, or for an unknown tenant, the
// previous binding is kept and an error frame goes back.
func (s *Server) applyWireTenantSelect(out []byte, name string, prev Backend) (Backend, []byte) {
	if s.tenants == nil {
		return prev, wire.AppendError(out, wire.CodeUnsupported, "tenant select: server is not in tenant mode")
	}
	h, err := s.tenants.Tenant(name)
	switch {
	case errors.Is(err, tenant.ErrNotFound):
		return prev, wire.AppendError(out, wire.CodeNotFound, "tenant select: "+err.Error()+": "+name)
	case errors.Is(err, tenant.ErrClosed):
		return prev, wire.AppendError(out, wire.CodeClosed, "tenant select: "+err.Error())
	case err != nil:
		return prev, wire.AppendError(out, wire.CodeInternal, "tenant select: "+err.Error())
	}
	return h, wire.AppendTenantAck(out)
}

// applyWireIngest scatters one decoded edge batch into the engine and
// appends the ack (or error) reply frame. Backpressure is expressed in
// the ack itself: rejected > 0 tells the client to retry that suffix —
// a tenant's token-bucket cut uses the same ack shape as queue-full.
func (s *Server) applyWireIngest(out []byte, be Backend, edges []stream.Edge) []byte {
	s.stats.ingestRequests.Add(1)
	accepted, err := be.TryIngest(edges)
	s.stats.edgesAccepted.Add(int64(accepted))
	rejected := len(edges) - accepted
	switch {
	case errors.Is(err, tenant.ErrNotFound):
		return wire.AppendError(out, wire.CodeNotFound, "ingest: "+err.Error())
	case errors.Is(err, gsketch.ErrEngineClosed), errors.Is(err, cluster.ErrClosed), errors.Is(err, tenant.ErrClosed):
		return wire.AppendError(out, wire.CodeClosed, "ingest pipeline closed")
	case errors.Is(err, cluster.ErrShardDown):
		// Not an ack: an acked rejection invites an immediate retry, but
		// the owning shard is down. The typed error closes the
		// conversation instead.
		s.stats.edgesRejected.Add(int64(rejected))
		return wire.AppendError(out, wire.CodeDegraded, err.Error())
	case errors.Is(err, gsketch.ErrIngestQueueFull), errors.Is(err, tenant.ErrRateLimited):
		s.stats.edgesRejected.Add(int64(rejected))
		return wire.AppendAck(out, accepted, rejected)
	case err != nil:
		return wire.AppendError(out, wire.CodeInternal, err.Error())
	}
	return wire.AppendAck(out, accepted, 0)
}

// applyWireQuery answers one decoded query batch and appends the results
// frame.
func (s *Server) applyWireQuery(out []byte, be Backend, qs []core.EdgeQuery) []byte {
	s.stats.queryRequests.Add(1)
	if len(qs) == 0 {
		return wire.AppendResults(out, nil)
	}
	results, err := be.QueryBatch(qs)
	if err != nil {
		// Partial cluster answers are refused on the wire: the frame
		// format has no partial-result channel, so degraded is an error.
		code := uint16(wire.CodeInternal)
		switch {
		case isShardFailure(err):
			code = wire.CodeDegraded
		case errors.Is(err, tenant.ErrNotFound):
			code = wire.CodeNotFound
		case errors.Is(err, cluster.ErrClosed), errors.Is(err, gsketch.ErrEngineClosed), errors.Is(err, tenant.ErrClosed):
			code = wire.CodeClosed
		}
		return wire.AppendError(out, code, err.Error())
	}
	s.stats.queriesAnswered.Add(int64(len(results)))
	return wire.AppendResults(out, results)
}

// applyWireFlush drains the ingest pipeline (bounded by FlushTimeout) and
// appends the flush ack.
func (s *Server) applyWireFlush(out []byte, be Backend) []byte {
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.FlushTimeout)
	defer cancel()
	err := be.Drain(ctx)
	switch {
	case err == nil, errors.Is(err, gsketch.ErrEngineClosed), errors.Is(err, cluster.ErrClosed), errors.Is(err, tenant.ErrClosed):
		return wire.AppendFlushAck(out)
	case errors.Is(err, tenant.ErrNotFound):
		return wire.AppendError(out, wire.CodeNotFound, "flush: "+err.Error())
	case errors.Is(err, context.DeadlineExceeded):
		return wire.AppendError(out, wire.CodeInternal, "flush: drain did not quiesce")
	default:
		return wire.AppendError(out, wire.CodeInternal, "flush: "+err.Error())
	}
}

// applyWirePing answers a health probe from the backend's non-blocking
// gauges — the frame a cluster coordinator sends each shard every
// PingInterval.
func (s *Server) applyWirePing(out []byte, be Backend) []byte {
	total, depth, gens := be.Health()
	return wire.AppendPong(out, wire.Pong{
		StreamTotal: total,
		QueueDepth:  uint32(depth),
		Generations: uint32(gens),
	})
}

// applyWireSnapSave persists a snapshot to the backend's own configured
// path — the receiving end of the coordinator's snapshot fan-out.
func (s *Server) applyWireSnapSave(out []byte, be Backend) []byte {
	n, err := be.SaveSnapshot("")
	switch {
	case errors.Is(err, gsketch.ErrNoSnapshotPath), errors.Is(err, cluster.ErrNoSnapshotPath):
		return wire.AppendError(out, wire.CodeUnsupported, "snapshot save: "+err.Error())
	case errors.Is(err, tenant.ErrNotFound):
		return wire.AppendError(out, wire.CodeNotFound, "snapshot save: "+err.Error())
	case errors.Is(err, gsketch.ErrEngineClosed), errors.Is(err, cluster.ErrClosed), errors.Is(err, tenant.ErrClosed):
		return wire.AppendError(out, wire.CodeClosed, "snapshot save: "+err.Error())
	case err != nil:
		return wire.AppendError(out, wire.CodeInternal, "snapshot save: "+err.Error())
	}
	s.stats.snapshotsSaved.Add(1)
	return wire.AppendSnapSaveAck(out, n)
}

// applyWireSnapRestore swaps in the snapshot at the backend's own
// configured path and acks with the post-swap gauges.
func (s *Server) applyWireSnapRestore(out []byte, be Backend) []byte {
	done := s.beginSwap()
	err := be.RestoreSnapshot("")
	done()
	switch {
	case errors.Is(err, gsketch.ErrNoSnapshotPath), errors.Is(err, cluster.ErrNoSnapshotPath),
		errors.Is(err, gsketch.ErrNotAdaptive), errors.Is(err, gsketch.ErrWindowMounted):
		return wire.AppendError(out, wire.CodeUnsupported, "snapshot restore: "+err.Error())
	case errors.Is(err, tenant.ErrNotFound):
		return wire.AppendError(out, wire.CodeNotFound, "snapshot restore: "+err.Error())
	case errors.Is(err, gsketch.ErrEngineClosed), errors.Is(err, cluster.ErrClosed), errors.Is(err, tenant.ErrClosed):
		return wire.AppendError(out, wire.CodeClosed, "snapshot restore: "+err.Error())
	case err != nil:
		return wire.AppendError(out, wire.CodeInternal, "snapshot restore: "+err.Error())
	}
	s.stats.snapshotsRestored.Add(1)
	total, _, gens := be.Health()
	return wire.AppendSnapRestoreAck(out, total, gens)
}

// isWireRequest reports whether an HTTP request carries a wire-framed
// body.
func isWireRequest(r *http.Request) bool {
	return strings.HasPrefix(r.Header.Get("Content-Type"), wire.ContentType)
}

// writeWireFrame writes one reply frame as an HTTP response body.
func (s *Server) writeWireFrame(w http.ResponseWriter, code int, frame []byte) {
	w.Header().Set("Content-Type", wire.ContentType)
	w.WriteHeader(code)
	if n, _ := w.Write(frame); n > 0 {
		s.stats.wireBytesOut.Add(int64(n))
	}
}

// handleWireIngestHTTP serves POST /ingest bodies framed in the wire
// format: every TypeIngest frame in the body is decoded into one pooled
// batch, offered to the engine in one TryIngest, and acked with a wire
// frame (HTTP 429 plus the ack when the pipeline shed a suffix, mirroring
// the NDJSON path).
func (s *Server) handleWireIngestHTTP(w http.ResponseWriter, r *http.Request, be Backend) {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	buf := getEdgeBuf()
	defer putEdgeBuf(buf)
	if !s.decodeWireBody(w, body, wire.TypeIngest, func(payload []byte) (err error) {
		*buf, err = wire.DecodeEdges(*buf, payload)
		return err
	}) {
		return
	}
	out := getFrameBuf()
	defer putFrameBuf(out)
	accepted, err := be.TryIngest(*buf)
	s.stats.edgesAccepted.Add(int64(accepted))
	rejected := len(*buf) - accepted
	switch {
	case errors.Is(err, tenant.ErrNotFound):
		s.writeWireFrame(w, http.StatusNotFound, wire.AppendError((*out)[:0], wire.CodeNotFound, err.Error()))
		return
	case errors.Is(err, gsketch.ErrEngineClosed), errors.Is(err, cluster.ErrClosed), errors.Is(err, tenant.ErrClosed):
		s.writeWireFrame(w, http.StatusServiceUnavailable, wire.AppendError((*out)[:0], wire.CodeClosed, "ingest pipeline closed"))
		return
	case errors.Is(err, cluster.ErrShardDown):
		s.stats.edgesRejected.Add(int64(rejected))
		s.writeWireFrame(w, http.StatusServiceUnavailable, wire.AppendError((*out)[:0], wire.CodeDegraded, err.Error()))
		return
	case errors.Is(err, gsketch.ErrIngestQueueFull), errors.Is(err, tenant.ErrRateLimited):
		s.stats.edgesRejected.Add(int64(rejected))
		w.Header().Set("Retry-After", "1")
		s.writeWireFrame(w, http.StatusTooManyRequests, wire.AppendAck((*out)[:0], accepted, rejected))
		return
	case err != nil:
		s.writeWireFrame(w, http.StatusInternalServerError, wire.AppendError((*out)[:0], wire.CodeInternal, err.Error()))
		return
	}
	if r.URL.Query().Get("sync") != "" {
		if err := s.drainBounded(r, be); err != nil {
			s.writeWireFrame(w, http.StatusServiceUnavailable, wire.AppendError((*out)[:0], wire.CodeInternal, err.Error()))
			return
		}
	}
	s.writeWireFrame(w, http.StatusOK, wire.AppendAck((*out)[:0], accepted, 0))
}

// handleWireQueryHTTP serves POST /query bodies framed in the wire
// format: the queries of every TypeQuery frame are answered in one
// batched pass and returned as a single TypeResults frame. ?sync=1 drains
// the pipeline first, like the JSON body's "sync" field.
func (s *Server) handleWireQueryHTTP(w http.ResponseWriter, r *http.Request, be Backend) {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	buf := getQueryBuf()
	defer putQueryBuf(buf)
	if !s.decodeWireBody(w, body, wire.TypeQuery, func(payload []byte) (err error) {
		*buf, err = wire.DecodeQueries(*buf, payload)
		return err
	}) {
		return
	}
	out := getFrameBuf()
	defer putFrameBuf(out)
	if len(*buf) == 0 {
		s.writeWireFrame(w, http.StatusBadRequest, wire.AppendError((*out)[:0], wire.CodeBadFrame, "query: empty batch"))
		return
	}
	if r.URL.Query().Get("sync") != "" {
		if err := s.drainBounded(r, be); err != nil {
			s.writeWireFrame(w, http.StatusServiceUnavailable, wire.AppendError((*out)[:0], wire.CodeInternal, err.Error()))
			return
		}
	}
	results, err := be.QueryBatch(*buf)
	if err != nil {
		status := http.StatusInternalServerError
		code := uint16(wire.CodeInternal)
		switch {
		case isShardFailure(err):
			status, code = http.StatusBadGateway, wire.CodeDegraded
		case errors.Is(err, tenant.ErrNotFound):
			status, code = http.StatusNotFound, wire.CodeNotFound
		case errors.Is(err, cluster.ErrClosed), errors.Is(err, gsketch.ErrEngineClosed), errors.Is(err, tenant.ErrClosed):
			status, code = http.StatusServiceUnavailable, wire.CodeClosed
		}
		s.writeWireFrame(w, status, wire.AppendError((*out)[:0], code, err.Error()))
		return
	}
	s.stats.queriesAnswered.Add(int64(len(results)))
	s.writeWireFrame(w, http.StatusOK, wire.AppendResults((*out)[:0], results))
}

// decodeWireBody reads every frame of an HTTP wire body, requiring type
// want and feeding each payload to sink. It writes the HTTP error reply
// itself and returns false when the body is unusable.
func (s *Server) decodeWireBody(w http.ResponseWriter, body io.Reader, want byte, sink func([]byte) error) bool {
	dec := wire.NewDecoderSize(varReader{r: body, n: s.stats.wireBytesIn}, int(s.cfg.MaxBodyBytes))
	frames := 0
	for {
		f, err := dec.Next()
		if err == io.EOF {
			break
		}
		if err == nil && f.Type != want {
			err = fmt.Errorf("%w: frame type 0x%02x in a 0x%02x body", wire.ErrUnknownType, f.Type, want)
		}
		if err == nil {
			start := time.Now()
			err = sink(f.Payload)
			if err == nil {
				s.metrics.wireDecode.ObserveSince(start)
			}
		}
		if err != nil {
			s.stats.wireDecodeErrors.Add(1)
			out := getFrameBuf()
			s.writeWireFrame(w, http.StatusBadRequest, wire.AppendError((*out)[:0], wire.CodeBadFrame, err.Error()))
			putFrameBuf(out)
			return false
		}
		s.stats.wireFrames.Add(1)
		frames++
	}
	if frames == 0 {
		s.stats.wireDecodeErrors.Add(1)
		out := getFrameBuf()
		s.writeWireFrame(w, http.StatusBadRequest, wire.AppendError((*out)[:0], wire.CodeBadFrame, "empty wire body"))
		putFrameBuf(out)
		return false
	}
	return true
}
