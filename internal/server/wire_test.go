package server

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"net"
	"net/http"
	"os"
	"syscall"
	"testing"
	"time"

	"github.com/graphstream/gsketch/internal/core"
	"github.com/graphstream/gsketch/internal/ingest"
	"github.com/graphstream/gsketch/internal/stream"
	"github.com/graphstream/gsketch/internal/wire"
)

// wireClient is a minimal test client for the TCP wire protocol.
type wireClient struct {
	conn net.Conn
	dec  *wire.Decoder
	buf  []byte
}

func dialWire(t *testing.T, addr string) *wireClient {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return &wireClient{conn: conn, dec: wire.NewDecoder(bufio.NewReader(conn))}
}

func (c *wireClient) send(t *testing.T, frame []byte) {
	t.Helper()
	if _, err := c.conn.Write(frame); err != nil {
		t.Fatal(err)
	}
}

func (c *wireClient) next(t *testing.T) wire.Frame {
	t.Helper()
	f, err := c.dec.Next()
	if err != nil {
		t.Fatalf("reading reply frame: %v", err)
	}
	return f
}

// ingestWire pushes edges through the connection in chunks, retrying any
// rejected suffix, then flushes the pipeline.
func (c *wireClient) ingestWire(t *testing.T, edges []stream.Edge) {
	t.Helper()
	const chunk = 1024
	for lo := 0; lo < len(edges); {
		hi := lo + chunk
		if hi > len(edges) {
			hi = len(edges)
		}
		c.buf = wire.AppendIngest(c.buf[:0], edges[lo:hi])
		c.send(t, c.buf)
		f := c.next(t)
		if f.Type != wire.TypeAck {
			t.Fatalf("ingest reply type 0x%02x, want ack", f.Type)
		}
		accepted, _, err := wire.DecodeAck(f.Payload)
		if err != nil {
			t.Fatal(err)
		}
		lo += accepted
		if accepted == 0 {
			time.Sleep(time.Millisecond)
		}
	}
	c.buf = wire.AppendFlush(c.buf[:0])
	c.send(t, c.buf)
	if f := c.next(t); f.Type != wire.TypeFlushAck {
		t.Fatalf("flush reply type 0x%02x, want flush ack", f.Type)
	}
}

func (c *wireClient) queryWire(t *testing.T, qs []core.EdgeQuery) []core.Result {
	t.Helper()
	c.buf = wire.AppendQuery(c.buf[:0], qs)
	c.send(t, c.buf)
	f := c.next(t)
	if f.Type != wire.TypeResults {
		t.Fatalf("query reply type 0x%02x, want results", f.Type)
	}
	rs, err := wire.DecodeResults(nil, f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

// newWireServer starts a server with both an httptest HTTP frontend and a
// loopback TCP wire listener.
func newWireServer(t *testing.T, cfg Config) (*Server, string, string) {
	t.Helper()
	srv, ts := newTestServer(t, cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.ServeWire(ln) //nolint:errcheck // ErrServerClosed after shutdown
	return srv, ts.URL, ln.Addr().String()
}

// TestWireEquivalence ingests the same stream over the TCP wire protocol
// and checks that wire queries, HTTP wire-body queries and HTTP JSON
// queries all answer byte-identically to the engine's own read path.
func TestWireEquivalence(t *testing.T) {
	edges := testStream(6000, 11)
	g := buildTestGSketch(t, edges[:2000])
	cfg := Config{
		Estimator: core.NewConcurrent(g),
		Ingest:    ingest.Config{Workers: 2, BatchSize: 256},
	}
	srv, httpURL, wireAddr := newWireServer(t, cfg)

	wc := dialWire(t, wireAddr)
	wc.ingestWire(t, edges)

	var total int64
	for _, e := range edges {
		total += e.Weight
	}
	if got := srv.Engine().Estimator().Count(); got != total {
		t.Fatalf("wire ingest lost volume: Count=%d want %d", got, total)
	}

	qs := make([]core.EdgeQuery, 512)
	for i := range qs {
		qs[i] = core.EdgeQuery{Src: edges[i*7%len(edges)].Src, Dst: edges[i*7%len(edges)].Dst}
	}
	want := srv.Engine().QueryBatch(qs)

	got := wc.queryWire(t, qs)
	if len(got) != len(want) {
		t.Fatalf("wire answered %d results, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("wire result %d = %+v, want %+v", i, got[i], want[i])
		}
	}

	// HTTP with a wire-framed body answers the same bytes.
	resp, err := http.Post(httpURL+"/query", wire.ContentType, bytes.NewReader(wire.AppendQuery(nil, qs)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("http wire query status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	f, err := wire.NewDecoder(bytes.NewReader(body)).Next()
	if err != nil || f.Type != wire.TypeResults {
		t.Fatalf("http wire reply: type 0x%02x err %v", f.Type, err)
	}
	httpGot, err := wire.DecodeResults(nil, f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if httpGot[i] != want[i] {
			t.Fatalf("http wire result %d = %+v, want %+v", i, httpGot[i], want[i])
		}
	}

	// The JSON path agrees on every field it carries.
	jsonGot := queryBatch(t, httpURL, qs)
	for i := range want {
		j := jsonGot[i]
		if j.Estimate != want[i].Estimate || j.Partition != want[i].Partition ||
			j.Outlier != want[i].Outlier || j.ErrorBound != want[i].ErrorBound ||
			j.Confidence != want[i].Confidence {
			t.Fatalf("json result %d = %+v, want %+v", i, j, want[i])
		}
	}
}

// TestWireHTTPIngest round-trips an ingest through the HTTP endpoint with
// a wire-framed body.
func TestWireHTTPIngest(t *testing.T) {
	edges := testStream(3000, 17)
	g := buildTestGSketch(t, edges[:1000])
	_, hts := newTestServer(t, Config{
		Estimator: core.NewConcurrent(g),
		Ingest:    ingest.Config{Workers: 2, BatchSize: 512},
	})
	ts := hts.URL

	var total int64
	for lo := 0; lo < len(edges); {
		hi := lo + 1000
		if hi > len(edges) {
			hi = len(edges)
		}
		resp, err := http.Post(ts+"/ingest?sync=1", wire.ContentType, bytes.NewReader(wire.AppendIngest(nil, edges[lo:hi])))
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		f, err := wire.NewDecoder(bytes.NewReader(body)).Next()
		if err != nil {
			t.Fatal(err)
		}
		switch {
		case resp.StatusCode == http.StatusOK && f.Type == wire.TypeAck:
			accepted, rejected, err := wire.DecodeAck(f.Payload)
			if err != nil || rejected != 0 || accepted != hi-lo {
				t.Fatalf("ack = (%d, %d, %v), want (%d, 0)", accepted, rejected, err, hi-lo)
			}
			lo = hi
		case resp.StatusCode == http.StatusTooManyRequests && f.Type == wire.TypeAck:
			accepted, _, err := wire.DecodeAck(f.Payload)
			if err != nil {
				t.Fatal(err)
			}
			lo += accepted
		default:
			t.Fatalf("status %d, frame type 0x%02x", resp.StatusCode, f.Type)
		}
	}
	for _, e := range edges {
		total += e.Weight
	}
	// ?sync=1 drained on the last chunk; retries may still be in flight.
	waitFor(t, "wire HTTP ingest", func() bool { return g.Count() == total })
}

// TestWireCorruptFrame sends garbage mid-stream: the server must answer a
// typed error frame and close the connection without panicking.
func TestWireCorruptFrame(t *testing.T) {
	g := buildTestGSketch(t, testStream(100, 3))
	_, _, wireAddr := newWireServer(t, Config{Estimator: core.NewConcurrent(g)})

	wc := dialWire(t, wireAddr)
	// A valid frame first, so the failure is genuinely mid-stream.
	wc.buf = wire.AppendQuery(wc.buf[:0], []core.EdgeQuery{{Src: 1, Dst: 2}})
	wc.send(t, wc.buf)
	if f := wc.next(t); f.Type != wire.TypeResults {
		t.Fatalf("warmup reply type 0x%02x", f.Type)
	}
	wc.send(t, []byte{0xde, 0xad, 0xbe, 0xef, 0xff, 0xff, 0xff, 0xff})
	f := wc.next(t)
	if f.Type != wire.TypeError {
		t.Fatalf("reply type 0x%02x, want error", f.Type)
	}
	code, msg, err := wire.DecodeError(f.Payload)
	if err != nil || code != wire.CodeBadFrame || msg == "" {
		t.Fatalf("error frame = (%d, %q, %v), want code %d", code, msg, err, wire.CodeBadFrame)
	}
	if _, err := wc.dec.Next(); err == nil {
		t.Fatal("connection still open after protocol error")
	}
}

// TestWireOversizedFrame checks the size bound: a header claiming more
// than MaxBodyBytes is rejected up front.
func TestWireOversizedFrame(t *testing.T) {
	g := buildTestGSketch(t, testStream(100, 3))
	_, _, wireAddr := newWireServer(t, Config{Estimator: core.NewConcurrent(g), MaxBodyBytes: 1 << 16})

	wc := dialWire(t, wireAddr)
	hdr := make([]byte, wire.HeaderSize)
	hdr[0], hdr[1] = wire.Version, wire.TypeIngest
	hdr[4], hdr[5], hdr[6], hdr[7] = 0xff, 0xff, 0xff, 0x0f // 256 MiB claim
	wc.send(t, hdr)
	f := wc.next(t)
	if f.Type != wire.TypeError {
		t.Fatalf("reply type 0x%02x, want error", f.Type)
	}
}

// TestWireBadBodyHTTP checks the HTTP wire paths reject malformed and
// mismatched bodies with a wire error frame and HTTP 400.
func TestWireBadBodyHTTP(t *testing.T) {
	g := buildTestGSketch(t, testStream(100, 3))
	_, hts := newTestServer(t, Config{Estimator: core.NewConcurrent(g)})
	ts := hts.URL

	cases := []struct {
		name string
		path string
		body []byte
	}{
		{"truncated", "/ingest", wire.AppendIngest(nil, testStream(4, 1))[:10]},
		{"empty", "/ingest", nil},
		{"query frame on ingest", "/ingest", wire.AppendQuery(nil, []core.EdgeQuery{{Src: 1, Dst: 2}})},
		{"ingest frame on query", "/query", wire.AppendIngest(nil, testStream(4, 1))},
		{"empty query batch", "/query", wire.AppendQuery(nil, nil)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts+tc.path, wire.ContentType, bytes.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400", resp.StatusCode)
			}
			body, _ := io.ReadAll(resp.Body)
			f, err := wire.NewDecoder(bytes.NewReader(body)).Next()
			if err != nil || f.Type != wire.TypeError {
				t.Fatalf("reply frame type 0x%02x err %v, want error frame", f.Type, err)
			}
		})
	}
}

// TestWireStatsCounters checks the wire expvar counters surface in /stats.
func TestWireStatsCounters(t *testing.T) {
	edges := testStream(500, 23)
	g := buildTestGSketch(t, edges)
	_, httpURL, wireAddr := newWireServer(t, Config{Estimator: core.NewConcurrent(g), Ingest: ingest.Config{Workers: 1, BatchSize: 128}})

	wc := dialWire(t, wireAddr)
	wc.ingestWire(t, edges)
	wc.queryWire(t, []core.EdgeQuery{{Src: edges[0].Src, Dst: edges[0].Dst}})

	stats := getStats(t, httpURL)
	if got := stats["wire_frames"].(float64); got < 3 { // ingest + flush + query at minimum
		t.Fatalf("wire_frames = %v, want >= 3", got)
	}
	if got := stats["wire_bytes_in"].(float64); got < float64(len(edges)*wire.EdgeSize) {
		t.Fatalf("wire_bytes_in = %v, want >= %d", got, len(edges)*wire.EdgeSize)
	}
	if got := stats["wire_bytes_out"].(float64); got <= 0 {
		t.Fatalf("wire_bytes_out = %v, want > 0", got)
	}
	if got := stats["wire_decode_errors"].(float64); got != 0 {
		t.Fatalf("wire_decode_errors = %v, want 0", got)
	}

	// A corrupt frame on a fresh connection bumps the error counter.
	wc2 := dialWire(t, wireAddr)
	wc2.send(t, []byte{0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00})
	wc2.next(t) // error frame
	waitFor(t, "decode error counter", func() bool {
		return getStats(t, httpURL)["wire_decode_errors"].(float64) == 1
	})
}

// TestWireShutdown checks Shutdown closes the wire listener and its
// connections: in-flight clients see EOF/reset, new dials are refused.
func TestWireShutdown(t *testing.T) {
	g := buildTestGSketch(t, testStream(100, 3))
	srv, _, wireAddr := newWireServer(t, Config{Estimator: core.NewConcurrent(g)})

	wc := dialWire(t, wireAddr)
	wc.queryWire(t, []core.EdgeQuery{{Src: 1, Dst: 2}}) // connection is live
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := wc.dec.Next(); err == nil {
		t.Fatal("connection survived shutdown")
	}
	if _, err := net.Dial("tcp", wireAddr); err == nil {
		t.Fatal("listener survived shutdown")
	} else if !errors.Is(err, syscall.ECONNREFUSED) {
		t.Logf("post-shutdown dial failed with %v (not ECONNREFUSED; acceptable)", err)
	}
}

// TestWireClusterFrames exercises the coordinator-facing frames —
// ping/pong, snapshot save and snapshot restore — against an engine-backed
// wire server, plus the unsupported-save error when no snapshot path is
// configured.
func TestWireClusterFrames(t *testing.T) {
	edges := testStream(800, 29)
	g := buildTestGSketch(t, edges[:300])
	snap := t.TempDir() + "/wire.snap"
	_, _, wireAddr := newWireServer(t, Config{
		Estimator:    core.NewConcurrent(g),
		Ingest:       ingest.Config{Workers: 1, BatchSize: 128},
		SnapshotPath: snap,
	})

	wc := dialWire(t, wireAddr)
	wc.ingestWire(t, edges)
	var total int64
	for _, e := range edges {
		total += e.Weight
	}

	// Ping reflects the applied stream and generation count.
	wc.send(t, wire.AppendPing(nil))
	f := wc.next(t)
	if f.Type != wire.TypePong {
		t.Fatalf("ping reply type 0x%02x, want pong", f.Type)
	}
	pong, err := wire.DecodePong(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if pong.StreamTotal != total || pong.Generations != 1 {
		t.Fatalf("pong = %+v, want stream total %d, 1 generation", pong, total)
	}

	// Save persists to the server's own configured path.
	wc.send(t, wire.AppendSnapSave(nil))
	f = wc.next(t)
	if f.Type != wire.TypeSnapSaveAck {
		t.Fatalf("save reply type 0x%02x, want save ack", f.Type)
	}
	n, err := wire.DecodeSnapSaveAck(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(snap); err != nil || fi.Size() != n {
		t.Fatalf("snapshot on disk = (%v, %v), want %d bytes", fi, err, n)
	}

	// Mutate, restore, and check the ack carries the pre-mutation totals.
	wc.ingestWire(t, edges)
	wc.send(t, wire.AppendSnapRestore(nil))
	f = wc.next(t)
	if f.Type != wire.TypeSnapRestoreAck {
		t.Fatalf("restore reply type 0x%02x, want restore ack", f.Type)
	}
	restoredTotal, gens, err := wire.DecodeSnapRestoreAck(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if restoredTotal != total || gens != 1 {
		t.Fatalf("restore ack = (%d, %d), want (%d, 1)", restoredTotal, gens, total)
	}

	// No snapshot path configured: save answers unsupported, connection
	// stays usable afterwards for non-snapshot frames.
	g2 := buildTestGSketch(t, edges[:300])
	_, _, wireAddr2 := newWireServer(t, Config{Estimator: core.NewConcurrent(g2)})
	wc2 := dialWire(t, wireAddr2)
	wc2.send(t, wire.AppendSnapSave(nil))
	f = wc2.next(t)
	if f.Type != wire.TypeError {
		t.Fatalf("pathless save reply type 0x%02x, want error", f.Type)
	}
	code, _, err := wire.DecodeError(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if code != wire.CodeUnsupported {
		t.Fatalf("pathless save code = %d, want CodeUnsupported", code)
	}
}
