package sketch

import (
	"fmt"
	"sort"

	"github.com/graphstream/gsketch/internal/hashutil"
)

// AMS is the tug-of-war sketch of Alon, Matias & Szegedy (STOC 1996),
// cited by the paper (§2) among the synopses a global sketch could build
// on. Each of rows × cols counters accumulates Σ s(k)·count over the
// stream with a ±1 hash s per counter; the square of a counter is an
// unbiased estimate of the second frequency moment F2 = Σ f_k², and the
// median over rows of the mean over columns gives the classic
// (ε, δ)-estimate. F2 is the self-join size of the stream — the quantity
// that governs CountSketch variance and join-size estimation, which is
// how sketch partitioning was used in the prior work the paper contrasts
// with (Dobra et al., SIGMOD 2002).
type AMS struct {
	rows, cols int
	seed       uint64
	signs      []hashutil.SignHash // one per counter, row-major
	counters   []int64
	total      int64
}

// NewAMS builds a tug-of-war sketch with rows × cols counters. Estimation
// error shrinks like 1/sqrt(cols); confidence grows with rows.
func NewAMS(rows, cols int, seed uint64) (*AMS, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("%w: rows=%d cols=%d", ErrInvalidParams, rows, cols)
	}
	return &AMS{
		rows:     rows,
		cols:     cols,
		seed:     seed,
		signs:    hashutil.NewSignFamily(rows*cols, seed),
		counters: make([]int64, rows*cols),
	}, nil
}

// Rows returns the number of independent estimator rows.
func (a *AMS) Rows() int { return a.rows }

// Cols returns the number of averaged counters per row.
func (a *AMS) Cols() int { return a.cols }

// Update adds count occurrences of key (counts may be negative; AMS works
// in the turnstile model).
func (a *AMS) Update(key uint64, count int64) {
	if count == 0 {
		return
	}
	a.total += count
	for i := range a.counters {
		a.counters[i] += a.signs[i].Sign(key) * count
	}
}

// UpdateBatch applies the batch in slice order with the counter and sign
// slices hoisted out of the per-key loop.
func (a *AMS) UpdateBatch(keys []uint64, counts []int64) {
	if len(keys) != len(counts) {
		panic("sketch: UpdateBatch slice length mismatch")
	}
	signs, counters := a.signs, a.counters
	var total int64
	for i, key := range keys {
		count := counts[i]
		if count == 0 {
			continue
		}
		total += count
		for j := range counters {
			counters[j] += signs[j].Sign(key) * count
		}
	}
	a.total += total
}

// EstimateF2 returns the tug-of-war estimate of the second frequency
// moment Σ f_k²: median over rows of the mean over columns of squared
// counters.
func (a *AMS) EstimateF2() float64 {
	rowMeans := make([]float64, a.rows)
	for r := 0; r < a.rows; r++ {
		var sum float64
		for c := 0; c < a.cols; c++ {
			v := float64(a.counters[r*a.cols+c])
			sum += v * v
		}
		rowMeans[r] = sum / float64(a.cols)
	}
	sort.Float64s(rowMeans)
	if a.rows%2 == 1 {
		return rowMeans[a.rows/2]
	}
	return (rowMeans[a.rows/2-1] + rowMeans[a.rows/2]) / 2
}

// Count returns the total of all updates applied.
func (a *AMS) Count() int64 { return a.total }

// MemoryBytes reports the counter storage footprint.
func (a *AMS) MemoryBytes() int { return len(a.counters) * 8 }

// Reset clears the sketch.
func (a *AMS) Reset() {
	for i := range a.counters {
		a.counters[i] = 0
	}
	a.total = 0
}

// Merge adds another AMS sketch built with identical dimensions and seed;
// the merged sketch estimates the F2 of the concatenated streams.
func (a *AMS) Merge(other *AMS) error {
	if a.rows != other.rows || a.cols != other.cols || a.seed != other.seed {
		return fmt.Errorf("%w: merge of incompatible AMS sketches", ErrInvalidParams)
	}
	for i, v := range other.counters {
		a.counters[i] += v
	}
	a.total += other.total
	return nil
}
