package sketch

import (
	"math"
	"testing"

	"github.com/graphstream/gsketch/internal/hashutil"
)

func TestAMSExactOnSingleKey(t *testing.T) {
	a, err := NewAMS(5, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	a.Update(42, 10)
	// One key of frequency 10: F2 = 100, and every counter is ±10, so the
	// estimate is exact.
	if got := a.EstimateF2(); got != 100 {
		t.Errorf("F2 = %v, want 100", got)
	}
	if a.Count() != 10 {
		t.Errorf("count = %d", a.Count())
	}
}

func TestAMSEstimatesF2(t *testing.T) {
	a, err := NewAMS(7, 64, 3)
	if err != nil {
		t.Fatal(err)
	}
	truth := make(map[uint64]int64)
	rng := hashutil.NewRNG(9)
	for i := 0; i < 20000; i++ {
		k := rng.Uint64() % 500
		a.Update(k, 1)
		truth[k]++
	}
	var f2 float64
	for _, f := range truth {
		f2 += float64(f) * float64(f)
	}
	got := a.EstimateF2()
	// 64 columns ⇒ relative std ≈ sqrt(2/64) ≈ 18%; allow 3σ.
	if math.Abs(got-f2) > 0.6*f2 {
		t.Errorf("F2 estimate %v too far from truth %v", got, f2)
	}
}

func TestAMSTurnstile(t *testing.T) {
	a, _ := NewAMS(5, 32, 2)
	a.Update(1, 100)
	a.Update(1, -100) // full cancellation
	if got := a.EstimateF2(); got != 0 {
		t.Errorf("F2 after cancellation = %v, want 0", got)
	}
}

func TestAMSMerge(t *testing.T) {
	x, _ := NewAMS(5, 32, 4)
	y, _ := NewAMS(5, 32, 4)
	whole, _ := NewAMS(5, 32, 4)
	for i := uint64(0); i < 100; i++ {
		x.Update(i, 3)
		y.Update(i, 4)
		whole.Update(i, 7)
	}
	if err := x.Merge(y); err != nil {
		t.Fatal(err)
	}
	if x.EstimateF2() != whole.EstimateF2() {
		t.Errorf("merged F2 %v != whole %v", x.EstimateF2(), whole.EstimateF2())
	}
	z, _ := NewAMS(5, 16, 4)
	if err := x.Merge(z); err == nil {
		t.Error("merge of mismatched AMS accepted")
	}
}

func TestAMSResetAndValidation(t *testing.T) {
	a, _ := NewAMS(3, 8, 1)
	a.Update(5, 5)
	a.Reset()
	if a.EstimateF2() != 0 || a.Count() != 0 {
		t.Error("reset did not clear")
	}
	if a.MemoryBytes() != 3*8*8 {
		t.Errorf("memory = %d", a.MemoryBytes())
	}
	if _, err := NewAMS(0, 8, 1); err == nil {
		t.Error("zero rows accepted")
	}
	if _, err := NewAMS(3, 0, 1); err == nil {
		t.Error("zero cols accepted")
	}
}

func TestAMSSelfJoinInterpretation(t *testing.T) {
	// F2 of a uniform stream vs a skewed stream with the same volume: the
	// skewed one must have much larger F2 — the property that makes F2 a
	// skew diagnostic for graph streams.
	uniform, _ := NewAMS(7, 64, 5)
	skewed, _ := NewAMS(7, 64, 5)
	for i := 0; i < 10000; i++ {
		uniform.Update(uint64(i%1000), 1) // 1000 keys × 10
		skewed.Update(uint64(i%10), 1)    // 10 keys × 1000
	}
	if u, s := uniform.EstimateF2(), skewed.EstimateF2(); s < 10*u {
		t.Errorf("skewed F2 %v not ≫ uniform F2 %v", s, u)
	}
}
