package sketch

import (
	"bytes"
	"testing"

	"github.com/graphstream/gsketch/internal/hashutil"
)

// batchStream builds a deterministic skewed (key, count) stream.
func batchStream(n int, seed uint64) ([]uint64, []int64) {
	rng := hashutil.NewRNG(seed)
	keys := make([]uint64, n)
	counts := make([]int64, n)
	for i := range keys {
		keys[i] = rng.Uint64() % 4096
		counts[i] = int64(rng.Uint64()%5) + 1
		if i%97 == 0 {
			counts[i] = 0 // exercise the zero-count skip
		}
	}
	return keys, counts
}

// assertEquivalent feeds the same stream through seq (per-key Update) and
// bat (one UpdateBatch) and requires identical totals and estimates.
func assertEquivalent(t *testing.T, name string, seq, bat Synopsis, keys []uint64, counts []int64) {
	t.Helper()
	for i := range keys {
		seq.Update(keys[i], counts[i])
	}
	bat.UpdateBatch(keys, counts)
	if seq.Count() != bat.Count() {
		t.Fatalf("%s: Count %d (sequential) vs %d (batch)", name, seq.Count(), bat.Count())
	}
	for k := uint64(0); k < 4096; k++ {
		if s, b := seq.Estimate(k), bat.Estimate(k); s != b {
			t.Fatalf("%s: Estimate(%d) = %d (sequential) vs %d (batch)", name, k, s, b)
		}
	}
}

func TestCountMinUpdateBatchEquivalence(t *testing.T) {
	keys, counts := batchStream(20_000, 11)
	seq, _ := NewCountMin(512, 5, 3)
	bat, _ := NewCountMin(512, 5, 3)
	assertEquivalent(t, "countmin", seq, bat, keys, counts)

	// Byte-identical counters, not just identical estimates.
	var sb, bb bytes.Buffer
	if _, err := seq.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	if _, err := bat.WriteTo(&bb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sb.Bytes(), bb.Bytes()) {
		t.Fatal("countmin: batch counters are not byte-identical to sequential")
	}
}

func TestCountMinConservativeUpdateBatchEquivalence(t *testing.T) {
	keys, counts := batchStream(20_000, 13)
	seq, _ := NewCountMin(512, 5, 3)
	seq.SetConservative(true)
	bat, _ := NewCountMin(512, 5, 3)
	bat.SetConservative(true)
	assertEquivalent(t, "countmin-conservative", seq, bat, keys, counts)
}

func TestCountSketchUpdateBatchEquivalence(t *testing.T) {
	keys, counts := batchStream(20_000, 17)
	seq, _ := NewCountSketch(512, 5, 3)
	bat, _ := NewCountSketch(512, 5, 3)
	assertEquivalent(t, "countsketch", seq, bat, keys, counts)
}

func TestLossyCountingUpdateBatchEquivalence(t *testing.T) {
	keys, counts := batchStream(20_000, 19)
	seq, _ := NewLossyCounting(0.001)
	bat, _ := NewLossyCounting(0.001)
	assertEquivalent(t, "lossy", seq, bat, keys, counts)
	if seq.Entries() != bat.Entries() {
		t.Fatalf("lossy: retained %d (sequential) vs %d (batch) entries", seq.Entries(), bat.Entries())
	}
}

func TestExactUpdateBatchEquivalence(t *testing.T) {
	keys, counts := batchStream(20_000, 23)
	assertEquivalent(t, "exact", NewExact(), NewExact(), keys, counts)
}

func TestAMSUpdateBatchEquivalence(t *testing.T) {
	keys, counts := batchStream(5_000, 29)
	seq, _ := NewAMS(5, 64, 3)
	bat, _ := NewAMS(5, 64, 3)
	for i := range keys {
		seq.Update(keys[i], counts[i])
	}
	bat.UpdateBatch(keys, counts)
	if seq.Count() != bat.Count() {
		t.Fatalf("ams: Count %d vs %d", seq.Count(), bat.Count())
	}
	if seq.EstimateF2() != bat.EstimateF2() {
		t.Fatalf("ams: F2 %v (sequential) vs %v (batch)", seq.EstimateF2(), bat.EstimateF2())
	}
}

func TestUpdateBatchLengthMismatchPanics(t *testing.T) {
	cm, _ := NewCountMin(16, 2, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched UpdateBatch slices did not panic")
		}
	}()
	cm.UpdateBatch([]uint64{1, 2}, []int64{1})
}

func TestCountMinUpdateBatchNegativePanics(t *testing.T) {
	cm, _ := NewCountMin(16, 2, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("negative batch count did not panic")
		}
	}()
	cm.UpdateBatch([]uint64{1}, []int64{-1})
}
