package sketch

import (
	"fmt"
	"math/bits"

	"github.com/graphstream/gsketch/internal/hashutil"
)

// CountMin is the CountMin sketch of Cormode & Muthukrishnan: a depth×width
// grid of counters with one pairwise-independent hash per row. Estimates are
// the minimum over the key's d cells, never below the true count (for
// non-negative updates) and, with probability at least 1-e^{-d}, at most
// the true count + e*N/width.
//
// The zero value is unusable; construct with NewCountMin or
// NewCountMinFromMemory. CountMin is not safe for concurrent mutation.
type CountMin struct {
	width        int
	depth        int
	seed         uint64
	conservative bool

	hashes []hashutil.PairwiseHash
	rows   []gatherRow // flattened hash coefficients for EstimateBatch (immutable)
	cells  []uint32    // row-major: cells[row*width + col]
	total  int64
}

// NewCountMin builds a CountMin sketch with explicit dimensions. The seed
// fixes the hash family; two sketches built with equal (width, depth, seed)
// are mergeable.
func NewCountMin(width, depth int, seed uint64) (*CountMin, error) {
	if width <= 0 || depth <= 0 {
		return nil, fmt.Errorf("%w: width=%d depth=%d", ErrInvalidParams, width, depth)
	}
	cm := &CountMin{
		width:  width,
		depth:  depth,
		seed:   seed,
		hashes: hashutil.NewPairwiseFamily(depth, width, seed),
		cells:  make([]uint32, width*depth),
	}
	// Flattened hash coefficients for EstimateBatch, built eagerly: the
	// gather runs under read locks from multiple goroutines, so it must
	// not initialize shared state lazily.
	cm.rows = make([]gatherRow, depth)
	for r, h := range cm.hashes {
		cm.rows[r].a, cm.rows[r].b = h.Params()
	}
	return cm, nil
}

// NewCountMinWithError builds a sketch from accuracy targets via
// DimsFromError.
func NewCountMinWithError(epsilon, delta float64, seed uint64) (*CountMin, error) {
	w, d, err := DimsFromError(epsilon, delta)
	if err != nil {
		return nil, err
	}
	return NewCountMin(w, d, seed)
}

// NewCountMinFromMemory builds the widest sketch of the given depth that
// fits in a byte budget.
func NewCountMinFromMemory(bytes, depth int, seed uint64) (*CountMin, error) {
	w, err := WidthFromMemory(bytes, depth)
	if err != nil {
		return nil, err
	}
	return NewCountMin(w, depth, seed)
}

// SetConservative toggles conservative update: each increment raises only
// the cells that would otherwise fall below the new lower bound, tightening
// overestimation at no accuracy cost. Must be set before the first Update
// to keep estimates coherent.
func (cm *CountMin) SetConservative(on bool) { cm.conservative = on }

// Conservative reports whether conservative update is enabled. Conservative
// sketches are not counter-mergeable (per-key lower bounds are not
// additive), so merge planners check this before committing to a cell-wise
// fold.
func (cm *CountMin) Conservative() bool { return cm.conservative }

// Width returns the number of counters per row.
func (cm *CountMin) Width() int { return cm.width }

// Depth returns the number of rows (independent hash functions).
func (cm *CountMin) Depth() int { return cm.depth }

// Seed returns the hash-family seed.
func (cm *CountMin) Seed() uint64 { return cm.seed }

// Update adds count occurrences of key. Negative counts are rejected by
// panic: the CountMin estimate guarantee only holds in the cash-register
// (non-negative) model, which is the model of the paper.
func (cm *CountMin) Update(key uint64, count int64) {
	if count < 0 {
		panic("sketch: negative update in cash-register model")
	}
	if count == 0 {
		return
	}
	cm.total += count
	if cm.conservative {
		cm.updateConservative(key, count)
		return
	}
	for r := 0; r < cm.depth; r++ {
		i := r*cm.width + cm.hashes[r].Hash(key)
		cm.cells[i] = addSat32(cm.cells[i], count)
	}
}

// UpdateBatch applies the batch in slice order, producing counters
// byte-identical to the equivalent sequence of Update calls. The plain
// (non-conservative) path hoists the field loads and the total
// accumulation out of the per-key loop so interface dispatch and bounds
// checks amortize across the batch.
func (cm *CountMin) UpdateBatch(keys []uint64, counts []int64) {
	if len(keys) != len(counts) {
		panic("sketch: UpdateBatch slice length mismatch")
	}
	if cm.conservative {
		// Conservative update reads its own cells back per key, so there is
		// nothing to hoist; order still matches sequential Update exactly.
		for i, key := range keys {
			cm.Update(key, counts[i])
		}
		return
	}
	var total int64
	for _, count := range counts {
		if count < 0 {
			panic("sketch: negative update in cash-register model")
		}
		total += count
	}
	// Row-major application: one hash-family member and one row segment of
	// cells stay hot across the whole batch. Saturating addition commutes,
	// so the final counters equal those of key-major (sequential) order.
	width, cells := cm.width, cm.cells
	for r := range cm.hashes {
		h := cm.hashes[r]
		row := cells[r*width : (r+1)*width]
		for i, key := range keys {
			count := counts[i]
			if count == 0 {
				continue
			}
			j := h.Hash(key)
			row[j] = addSat32(row[j], count)
		}
	}
	cm.total += total
}

func (cm *CountMin) updateConservative(key uint64, count int64) {
	// New lower bound for the key is min(cells) + count; only cells below
	// that bound are raised to it.
	min := int64(maxCell)
	idx := make([]int, cm.depth)
	for r := 0; r < cm.depth; r++ {
		i := r*cm.width + cm.hashes[r].Hash(key)
		idx[r] = i
		if v := int64(cm.cells[i]); v < min {
			min = v
		}
	}
	target := min + count
	for _, i := range idx {
		if int64(cm.cells[i]) < target {
			if target > maxCell {
				cm.cells[i] = maxCell
			} else {
				cm.cells[i] = uint32(target)
			}
		}
	}
}

// Estimate returns min over rows of the key's cell, the classic CountMin
// point estimate.
func (cm *CountMin) Estimate(key uint64) int64 {
	min := uint32(maxCell)
	for r := 0; r < cm.depth; r++ {
		v := cm.cells[r*cm.width+cm.hashes[r].Hash(key)]
		if v < min {
			min = v
		}
	}
	return int64(min)
}

// EstimateBatch answers a batch of point queries key-major with the field
// loads hoisted out of the loop and the running minimum kept in a register
// — unlike UpdateBatch, the read path gains nothing from row-major order
// (there is no row-segment write locality to exploit) and loses the
// register-resident min to per-row out[i] traffic. Each key is reduced
// modulo the hash prime once and shared across the d row hashes, and the
// row-hash arithmetic is hand-inlined from the (a, b) coefficients —
// PairwiseHash.Hash is past the inlining budget, and d calls per key were
// the largest single cost of the batched read path. The values equal
// per-key Estimate exactly (min over the same d cells).
func (cm *CountMin) EstimateBatch(keys []uint64, out []int64) {
	if len(keys) != len(out) {
		panic("sketch: EstimateBatch slice length mismatch")
	}
	rows := cm.rows
	width, cells := cm.width, cm.cells
	w64 := uint64(width)
	for i, key := range keys {
		xr := hashutil.Mod61(key)
		min := uint32(maxCell)
		base := 0
		for _, p := range rows {
			// (a·xr + b) mod 2^61-1 via 2^64 ≡ 8: hi·8 cannot overflow
			// (hi < 2^58) and the three reduced terms sum below 2^63, so a
			// single final Mod61 lands on the same canonical residue as
			// PairwiseHash.Hash. Spelled out here because the composed
			// helper is past the inlining budget and a call per row per
			// key dominates the gather.
			hi, lo := bits.Mul64(p.a, xr)
			v := hashutil.Mod61(hashutil.Mod61(hi<<3) + hashutil.Mod61(lo) + p.b)
			vhi, vlo := bits.Mul64(v, w64)
			if c := cells[base+int(vhi<<3|vlo>>61)]; c < min {
				min = c
			}
			base += width
		}
		out[i] = int64(min)
	}
}

// gatherRow is one row's hash coefficients, flattened out of PairwiseHash
// for the hand-inlined gather loop. Built once in NewCountMin and
// immutable afterwards, so concurrent readers share it freely.
type gatherRow struct {
	a, b uint64
}

// Count returns the total stream volume added to this sketch.
func (cm *CountMin) Count() int64 { return cm.total }

// MemoryBytes reports the counter storage footprint.
func (cm *CountMin) MemoryBytes() int { return len(cm.cells) * CellSize }

// Reset zeroes all counters.
func (cm *CountMin) Reset() {
	for i := range cm.cells {
		cm.cells[i] = 0
	}
	cm.total = 0
}

// Merge adds other's counters into cm. Both sketches must have identical
// dimensions and seed (hence identical hash families); conservative-update
// sketches cannot be merged because per-key lower bounds are not additive.
func (cm *CountMin) Merge(other *CountMin) error {
	if cm.width != other.width || cm.depth != other.depth || cm.seed != other.seed {
		return fmt.Errorf("%w: merge of incompatible sketches (%dx%d seed %d vs %dx%d seed %d)",
			ErrInvalidParams, cm.depth, cm.width, cm.seed, other.depth, other.width, other.seed)
	}
	if cm.conservative || other.conservative {
		return fmt.Errorf("%w: conservative-update sketches are not mergeable", ErrInvalidParams)
	}
	for i, v := range other.cells {
		cm.cells[i] = addSat32(cm.cells[i], int64(v))
	}
	cm.total += other.total
	return nil
}

// Clone returns a deep copy of the sketch.
func (cm *CountMin) Clone() *CountMin {
	cp := *cm
	cp.cells = make([]uint32, len(cm.cells))
	copy(cp.cells, cm.cells)
	cp.hashes = make([]hashutil.PairwiseHash, len(cm.hashes))
	copy(cp.hashes, cm.hashes)
	return &cp
}

var _ Synopsis = (*CountMin)(nil)
