package sketch

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/graphstream/gsketch/internal/hashutil"
)

func TestCountMinBasic(t *testing.T) {
	cm, err := NewCountMin(1024, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	cm.Update(42, 3)
	cm.Update(42, 4)
	cm.Update(99, 1)
	if got := cm.Estimate(42); got < 7 {
		t.Errorf("estimate(42) = %d, want ≥ 7", got)
	}
	if got := cm.Count(); got != 8 {
		t.Errorf("count = %d, want 8", got)
	}
	if got := cm.Estimate(12345); got < 0 {
		t.Errorf("estimate of unseen key = %d, want ≥ 0", got)
	}
}

func TestCountMinNeverUnderestimates(t *testing.T) {
	// The defining CountMin property in the cash-register model.
	f := func(seed uint64, updates []uint8) bool {
		cm, err := NewCountMin(64, 4, seed)
		if err != nil {
			return false
		}
		truth := make(map[uint64]int64)
		for i, u := range updates {
			key := uint64(u % 32) // force collisions
			cnt := int64(i%3 + 1)
			cm.Update(key, cnt)
			truth[key] += cnt
		}
		for k, v := range truth {
			if cm.Estimate(k) < v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCountMinErrorBound(t *testing.T) {
	// With w = ⌈e/ε⌉, estimates exceed truth by at most ε·N with
	// probability ≥ 1-δ per query; check the bound holds for the vast
	// majority of a large batch.
	const eps, delta = 0.01, 0.01
	cm, err := NewCountMinWithError(eps, delta, 77)
	if err != nil {
		t.Fatal(err)
	}
	rng := hashutil.NewRNG(5)
	truth := make(map[uint64]int64)
	var n int64
	for i := 0; i < 20000; i++ {
		k := rng.Uint64() % 5000
		cm.Update(k, 1)
		truth[k]++
		n++
	}
	bound := int64(math.Ceil(eps * float64(n)))
	violations := 0
	for k, v := range truth {
		if cm.Estimate(k) > v+bound {
			violations++
		}
	}
	if frac := float64(violations) / float64(len(truth)); frac > delta*5 {
		t.Errorf("bound violated for %.2f%% of keys, want ≤ %.2f%%", frac*100, delta*500)
	}
}

func TestCountMinConservativeTighter(t *testing.T) {
	plain, _ := NewCountMin(128, 4, 9)
	cons, _ := NewCountMin(128, 4, 9)
	cons.SetConservative(true)

	rng := hashutil.NewRNG(6)
	truth := make(map[uint64]int64)
	for i := 0; i < 20000; i++ {
		k := rng.Uint64() % 1000
		plain.Update(k, 1)
		cons.Update(k, 1)
		truth[k]++
	}
	var overPlain, overCons int64
	for k, v := range truth {
		overPlain += plain.Estimate(k) - v
		overCons += cons.Estimate(k) - v
		if cons.Estimate(k) < v {
			t.Fatalf("conservative update underestimated key %d", k)
		}
		if cons.Estimate(k) > plain.Estimate(k) {
			t.Fatalf("conservative estimate exceeds plain for key %d", k)
		}
	}
	if overCons >= overPlain {
		t.Errorf("conservative total overestimate %d not below plain %d", overCons, overPlain)
	}
}

func TestCountMinMerge(t *testing.T) {
	a, _ := NewCountMin(256, 4, 3)
	b, _ := NewCountMin(256, 4, 3)
	whole, _ := NewCountMin(256, 4, 3)
	rng := hashutil.NewRNG(8)
	for i := 0; i < 5000; i++ {
		k := rng.Uint64() % 400
		if i%2 == 0 {
			a.Update(k, 1)
		} else {
			b.Update(k, 1)
		}
		whole.Update(k, 1)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != whole.Count() {
		t.Errorf("merged count %d != whole count %d", a.Count(), whole.Count())
	}
	for k := uint64(0); k < 400; k++ {
		if a.Estimate(k) != whole.Estimate(k) {
			t.Errorf("key %d: merged estimate %d != whole %d", k, a.Estimate(k), whole.Estimate(k))
		}
	}
}

func TestCountMinMergeIncompatible(t *testing.T) {
	a, _ := NewCountMin(256, 4, 3)
	b, _ := NewCountMin(128, 4, 3)
	if err := a.Merge(b); err == nil {
		t.Error("merge of different widths should fail")
	}
	c, _ := NewCountMin(256, 4, 4)
	if err := a.Merge(c); err == nil {
		t.Error("merge of different seeds should fail")
	}
	d, _ := NewCountMin(256, 4, 3)
	d.SetConservative(true)
	if err := a.Merge(d); err == nil {
		t.Error("merge with conservative sketch should fail")
	}
}

func TestCountMinClone(t *testing.T) {
	cm, _ := NewCountMin(64, 3, 1)
	cm.Update(5, 10)
	cp := cm.Clone()
	cp.Update(5, 7)
	if cm.Estimate(5) != 10 {
		t.Errorf("original mutated by clone update: %d", cm.Estimate(5))
	}
	if cp.Estimate(5) < 17 {
		t.Errorf("clone estimate = %d, want ≥ 17", cp.Estimate(5))
	}
}

func TestCountMinReset(t *testing.T) {
	cm, _ := NewCountMin(64, 3, 1)
	cm.Update(5, 10)
	cm.Reset()
	if cm.Estimate(5) != 0 || cm.Count() != 0 {
		t.Error("reset did not clear state")
	}
}

func TestCountMinSaturation(t *testing.T) {
	cm, _ := NewCountMin(4, 1, 1)
	cm.Update(1, math.MaxUint32)
	cm.Update(1, 100)
	if got := cm.Estimate(1); got != math.MaxUint32 {
		t.Errorf("saturated cell = %d, want %d", got, uint32(math.MaxUint32))
	}
}

func TestCountMinZeroAndNegative(t *testing.T) {
	cm, _ := NewCountMin(64, 3, 1)
	cm.Update(7, 0)
	if cm.Count() != 0 {
		t.Error("zero update changed count")
	}
	assertPanics(t, "negative update", func() { cm.Update(7, -1) })
}

func TestCountMinInvalidParams(t *testing.T) {
	if _, err := NewCountMin(0, 3, 1); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := NewCountMin(10, 0, 1); err == nil {
		t.Error("zero depth accepted")
	}
	if _, err := NewCountMinWithError(0, 0.5, 1); err == nil {
		t.Error("zero epsilon accepted")
	}
	if _, err := NewCountMinFromMemory(2, 5, 1); err == nil {
		t.Error("budget below one cell accepted")
	}
}

func TestDimsFromError(t *testing.T) {
	w, d, err := DimsFromError(0.01, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if w != 272 { // ceil(e/0.01)
		t.Errorf("width = %d, want 272", w)
	}
	if d != 5 { // ceil(ln 100) = ceil(4.605)
		t.Errorf("depth = %d, want 5", d)
	}
}

func TestWidthFromMemory(t *testing.T) {
	w, err := WidthFromMemory(1<<20, 5)
	if err != nil {
		t.Fatal(err)
	}
	if want := (1 << 20) / (5 * CellSize); w != want {
		t.Errorf("width = %d, want %d", w, want)
	}
	if _, err := WidthFromMemory(0, 5); err == nil {
		t.Error("zero budget accepted")
	}
}

func TestCountMinMemoryBytes(t *testing.T) {
	cm, _ := NewCountMin(100, 5, 1)
	if got := cm.MemoryBytes(); got != 100*5*CellSize {
		t.Errorf("memory = %d, want %d", got, 100*5*CellSize)
	}
}

func assertPanics(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	fn()
}
