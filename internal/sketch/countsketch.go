package sketch

import (
	"fmt"
	"sort"

	"github.com/graphstream/gsketch/internal/hashutil"
)

// CountSketch is the AMS-style sketch of Charikar, Chen and Farach-Colton:
// each row adds a ±1-signed count and the point estimate is the median of
// the signed row reads. Unlike CountMin it is unbiased and supports signed
// updates, at the cost of two-sided error. gsketch can run over it as an
// alternative base synopsis (the paper notes any sketch method can serve).
//
// Cells are int64 (CountSketch needs signed counters); MemoryBytes accounts
// for the wider cells so byte-budget comparisons against CountMin are fair.
type CountSketch struct {
	width int
	depth int
	seed  uint64

	hashes []hashutil.PairwiseHash
	signs  []hashutil.SignHash
	cells  []int64
	total  int64
}

// countSketchCellSize is the per-cell footprint of CountSketch in bytes.
const countSketchCellSize = 8

// NewCountSketch builds a CountSketch with explicit dimensions.
func NewCountSketch(width, depth int, seed uint64) (*CountSketch, error) {
	if width <= 0 || depth <= 0 {
		return nil, fmt.Errorf("%w: width=%d depth=%d", ErrInvalidParams, width, depth)
	}
	return &CountSketch{
		width:  width,
		depth:  depth,
		seed:   seed,
		hashes: hashutil.NewPairwiseFamily(depth, width, seed),
		signs:  hashutil.NewSignFamily(depth, seed),
		cells:  make([]int64, width*depth),
	}, nil
}

// NewCountSketchFromMemory builds the widest CountSketch of the given depth
// fitting the byte budget.
func NewCountSketchFromMemory(bytes, depth int, seed uint64) (*CountSketch, error) {
	if bytes <= 0 || depth <= 0 {
		return nil, fmt.Errorf("%w: bytes=%d depth=%d", ErrInvalidParams, bytes, depth)
	}
	w := bytes / (depth * countSketchCellSize)
	if w < 1 {
		return nil, fmt.Errorf("%w: budget of %d bytes cannot fit depth %d", ErrInvalidParams, bytes, depth)
	}
	return NewCountSketch(w, depth, seed)
}

// Width returns the number of counters per row.
func (cs *CountSketch) Width() int { return cs.width }

// Depth returns the number of rows.
func (cs *CountSketch) Depth() int { return cs.depth }

// Update adds count (which may be negative) occurrences of key.
func (cs *CountSketch) Update(key uint64, count int64) {
	if count == 0 {
		return
	}
	cs.total += count
	for r := 0; r < cs.depth; r++ {
		i := r*cs.width + cs.hashes[r].Hash(key)
		cs.cells[i] += cs.signs[r].Sign(key) * count
	}
}

// UpdateBatch applies the batch in slice order with the field loads
// hoisted out of the per-key loop; counters end up byte-identical to the
// equivalent sequence of Update calls.
func (cs *CountSketch) UpdateBatch(keys []uint64, counts []int64) {
	if len(keys) != len(counts) {
		panic("sketch: UpdateBatch slice length mismatch")
	}
	width, hashes, signs, cells := cs.width, cs.hashes, cs.signs, cs.cells
	var total int64
	for i, key := range keys {
		count := counts[i]
		if count == 0 {
			continue
		}
		total += count
		for r := range hashes {
			cells[r*width+hashes[r].Hash(key)] += signs[r].Sign(key) * count
		}
	}
	cs.total += total
}

// Estimate returns the median of the signed row reads. For the non-negative
// streams used in this module the result is clamped at zero.
func (cs *CountSketch) Estimate(key uint64) int64 {
	return cs.estimateInto(key, make([]int64, cs.depth))
}

// estimateInto is Estimate with a caller-provided scratch of length depth,
// so batch gathers allocate once per batch instead of once per key.
func (cs *CountSketch) estimateInto(key uint64, reads []int64) int64 {
	for r := 0; r < cs.depth; r++ {
		v := cs.cells[r*cs.width+cs.hashes[r].Hash(key)]
		reads[r] = cs.signs[r].Sign(key) * v
	}
	sort.Slice(reads, func(i, j int) bool { return reads[i] < reads[j] })
	var med int64
	if cs.depth%2 == 1 {
		med = reads[cs.depth/2]
	} else {
		med = (reads[cs.depth/2-1] + reads[cs.depth/2]) / 2
	}
	if med < 0 {
		med = 0
	}
	return med
}

// EstimateBatch answers a batch of point queries with one shared median
// scratch; each out[i] equals Estimate(keys[i]) exactly.
func (cs *CountSketch) EstimateBatch(keys []uint64, out []int64) {
	if len(keys) != len(out) {
		panic("sketch: EstimateBatch slice length mismatch")
	}
	reads := make([]int64, cs.depth)
	for i, key := range keys {
		out[i] = cs.estimateInto(key, reads)
	}
}

// Count returns the total stream volume added.
func (cs *CountSketch) Count() int64 { return cs.total }

// MemoryBytes reports the counter storage footprint.
func (cs *CountSketch) MemoryBytes() int { return len(cs.cells) * countSketchCellSize }

// Reset zeroes all counters.
func (cs *CountSketch) Reset() {
	for i := range cs.cells {
		cs.cells[i] = 0
	}
	cs.total = 0
}

// Merge adds other's counters into cs; dimensions and seed must match.
func (cs *CountSketch) Merge(other *CountSketch) error {
	if cs.width != other.width || cs.depth != other.depth || cs.seed != other.seed {
		return fmt.Errorf("%w: merge of incompatible count sketches", ErrInvalidParams)
	}
	for i, v := range other.cells {
		cs.cells[i] += v
	}
	cs.total += other.total
	return nil
}

var _ Synopsis = (*CountSketch)(nil)
