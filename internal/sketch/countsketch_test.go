package sketch

import (
	"math"
	"testing"

	"github.com/graphstream/gsketch/internal/hashutil"
)

func TestCountSketchBasic(t *testing.T) {
	cs, err := NewCountSketch(512, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	cs.Update(10, 100)
	cs.Update(20, 50)
	if got := cs.Estimate(10); got < 90 || got > 160 {
		t.Errorf("estimate(10) = %d, want ≈ 100", got)
	}
	if cs.Count() != 150 {
		t.Errorf("count = %d, want 150", cs.Count())
	}
}

func TestCountSketchConcentration(t *testing.T) {
	// The CountSketch guarantee: |est − f| ≤ 3·sqrt(F2/w) with high
	// probability per query (the median estimator concentrates; with
	// pairwise-independent signs it is NOT exactly unbiased, only
	// concentrated). Check both the per-key bound for ≥95% of keys and
	// that the realization's mean error stays small relative to the noise
	// scale.
	const width = 256
	cs, _ := NewCountSketch(width, 5, 2)
	truth := make(map[uint64]int64)
	rng := hashutil.NewRNG(3)
	for i := 0; i < 30000; i++ {
		k := rng.Uint64() % 2000
		cs.Update(k, 10)
		truth[k] += 10
	}
	var f2 float64
	for _, v := range truth {
		f2 += float64(v) * float64(v)
	}
	noise := math.Sqrt(f2 / width)

	var sumErr float64
	outside := 0
	for k, v := range truth {
		e := float64(cs.Estimate(k) - v)
		sumErr += e
		if e < -3*noise || e > 3*noise {
			outside++
		}
	}
	if frac := float64(outside) / float64(len(truth)); frac > 0.05 {
		t.Errorf("%.1f%% of keys outside 3·sqrt(F2/w)=%.0f, want ≤ 5%%", frac*100, 3*noise)
	}
	if mean := sumErr / float64(len(truth)); math.Abs(mean) > 0.25*noise {
		t.Errorf("mean error %.1f exceeds a quarter of the noise scale %.1f", mean, noise)
	}
}

func TestCountSketchSignedUpdates(t *testing.T) {
	cs, _ := NewCountSketch(128, 5, 4)
	cs.Update(7, 100)
	cs.Update(7, -40)
	if got := cs.Estimate(7); got < 40 || got > 80 {
		t.Errorf("estimate after signed updates = %d, want ≈ 60", got)
	}
}

func TestCountSketchMerge(t *testing.T) {
	a, _ := NewCountSketch(128, 5, 9)
	b, _ := NewCountSketch(128, 5, 9)
	whole, _ := NewCountSketch(128, 5, 9)
	for i := uint64(0); i < 500; i++ {
		a.Update(i, 2)
		b.Update(i, 3)
		whole.Update(i, 5)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 500; i++ {
		if a.Estimate(i) != whole.Estimate(i) {
			t.Fatalf("key %d: merged %d != whole %d", i, a.Estimate(i), whole.Estimate(i))
		}
	}
	c, _ := NewCountSketch(64, 5, 9)
	if err := a.Merge(c); err == nil {
		t.Error("merge of mismatched sketches should fail")
	}
}

func TestCountSketchResetAndMemory(t *testing.T) {
	cs, _ := NewCountSketch(64, 3, 1)
	cs.Update(1, 5)
	cs.Reset()
	if cs.Estimate(1) != 0 || cs.Count() != 0 {
		t.Error("reset did not clear")
	}
	if cs.MemoryBytes() != 64*3*8 {
		t.Errorf("memory = %d, want %d", cs.MemoryBytes(), 64*3*8)
	}
}

func TestCountSketchFromMemory(t *testing.T) {
	cs, err := NewCountSketchFromMemory(1<<16, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Width() != (1<<16)/(4*8) {
		t.Errorf("width = %d", cs.Width())
	}
	if _, err := NewCountSketchFromMemory(4, 4, 1); err == nil {
		t.Error("tiny budget accepted")
	}
}

func TestCountSketchInvalid(t *testing.T) {
	if _, err := NewCountSketch(0, 1, 1); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := NewCountSketch(1, 0, 1); err == nil {
		t.Error("zero depth accepted")
	}
}
