package sketch

import (
	"testing"
)

// assertGatherEquivalent populates a synopsis and requires EstimateBatch to
// return exactly the values of per-key Estimate over a probe set that mixes
// present and absent keys.
func assertGatherEquivalent(t *testing.T, name string, s Synopsis, keys []uint64, counts []int64) {
	t.Helper()
	s.UpdateBatch(keys, counts)

	probes := make([]uint64, 0, 6000)
	for k := uint64(0); k < 6000; k++ {
		probes = append(probes, k) // keys above 4096 are absent from the stream
	}
	got := make([]int64, len(probes))
	s.EstimateBatch(probes, got)
	for i, k := range probes {
		if want := s.Estimate(k); got[i] != want {
			t.Fatalf("%s: EstimateBatch[%d] = %d, Estimate(%d) = %d", name, i, got[i], k, want)
		}
	}
}

func TestCountMinEstimateBatchEquivalence(t *testing.T) {
	keys, counts := batchStream(20_000, 31)
	cm, _ := NewCountMin(512, 5, 3)
	assertGatherEquivalent(t, "countmin", cm, keys, counts)
}

func TestCountMinConservativeEstimateBatchEquivalence(t *testing.T) {
	keys, counts := batchStream(20_000, 37)
	cm, _ := NewCountMin(512, 5, 3)
	cm.SetConservative(true)
	assertGatherEquivalent(t, "countmin-conservative", cm, keys, counts)
}

func TestCountMinEstimateBatchEvenDepth(t *testing.T) {
	keys, counts := batchStream(10_000, 41)
	cm, _ := NewCountMin(512, 4, 3)
	assertGatherEquivalent(t, "countmin-even-depth", cm, keys, counts)
}

func TestCountSketchEstimateBatchEquivalence(t *testing.T) {
	keys, counts := batchStream(20_000, 43)
	cs, _ := NewCountSketch(512, 5, 3)
	assertGatherEquivalent(t, "countsketch", cs, keys, counts)
}

func TestCountSketchEstimateBatchEvenDepth(t *testing.T) {
	keys, counts := batchStream(10_000, 47)
	cs, _ := NewCountSketch(512, 4, 3)
	assertGatherEquivalent(t, "countsketch-even-depth", cs, keys, counts)
}

func TestLossyCountingEstimateBatchEquivalence(t *testing.T) {
	keys, counts := batchStream(20_000, 53)
	lc, _ := NewLossyCounting(0.001)
	assertGatherEquivalent(t, "lossy", lc, keys, counts)
}

func TestExactEstimateBatchEquivalence(t *testing.T) {
	keys, counts := batchStream(20_000, 59)
	assertGatherEquivalent(t, "exact", NewExact(), keys, counts)
}

func TestEstimateBatchEmpty(t *testing.T) {
	cm, _ := NewCountMin(16, 2, 1)
	cm.EstimateBatch(nil, nil) // must not panic
}

func TestEstimateBatchLengthMismatchPanics(t *testing.T) {
	cm, _ := NewCountMin(16, 2, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched EstimateBatch slices did not panic")
		}
	}()
	cm.EstimateBatch([]uint64{1, 2}, []int64{0})
}
