package sketch

import (
	"fmt"
	"math"
)

// LossyCounting implements the deterministic heavy-hitter synopsis of Manku
// & Motwani (VLDB 2002). The stream is processed in buckets of width
// ceil(1/epsilon); at each bucket boundary, entries whose count plus error
// bound falls below the bucket id are evicted. Estimates have one-sided
// error at most epsilon*N (underestimation — the dual of CountMin's
// overestimation), and only items with frequency above epsilon*N are
// guaranteed to be retained.
//
// It is included as an alternative base synopsis and as a comparison point
// in the ablation benches; the paper cites it among the applicable sketch
// methods.
type LossyCounting struct {
	epsilon     float64
	bucketWidth int64

	entries map[uint64]*lossyEntry
	total   int64
	bucket  int64 // current bucket id b = ceil(N / bucketWidth)
}

type lossyEntry struct {
	count int64
	delta int64 // maximum undercount when the entry was (re-)inserted
}

// lossyEntryBytes approximates the per-entry footprint: key + count + delta
// plus map overhead.
const lossyEntryBytes = 48

// NewLossyCounting builds a Lossy Counting synopsis with error bound
// epsilon in (0, 1).
func NewLossyCounting(epsilon float64) (*LossyCounting, error) {
	if !(epsilon > 0 && epsilon < 1) {
		return nil, fmt.Errorf("%w: epsilon=%v", ErrInvalidParams, epsilon)
	}
	return &LossyCounting{
		epsilon:     epsilon,
		bucketWidth: int64(math.Ceil(1 / epsilon)),
		entries:     make(map[uint64]*lossyEntry),
		bucket:      1,
	}, nil
}

// Epsilon returns the configured error bound.
func (lc *LossyCounting) Epsilon() float64 { return lc.epsilon }

// Update adds count occurrences of key.
func (lc *LossyCounting) Update(key uint64, count int64) {
	if count < 0 {
		panic("sketch: negative update in cash-register model")
	}
	if count == 0 {
		return
	}
	for count > 0 {
		// Consume the stream one bucket boundary at a time so that bulk
		// updates behave identically to the same sequence of unit updates.
		remaining := lc.bucket*lc.bucketWidth - lc.total
		step := count
		if step > remaining {
			step = remaining
		}
		lc.add(key, step)
		count -= step
		if lc.total == lc.bucket*lc.bucketWidth {
			lc.compress()
			lc.bucket++
		}
	}
}

// UpdateBatch applies the batch in slice order. Bucket-boundary compression
// interleaves with the keys exactly as it would under sequential Update, so
// the retained entry set is identical.
func (lc *LossyCounting) UpdateBatch(keys []uint64, counts []int64) {
	if len(keys) != len(counts) {
		panic("sketch: UpdateBatch slice length mismatch")
	}
	for i, key := range keys {
		lc.Update(key, counts[i])
	}
}

func (lc *LossyCounting) add(key uint64, count int64) {
	lc.total += count
	if e, ok := lc.entries[key]; ok {
		e.count += count
		return
	}
	lc.entries[key] = &lossyEntry{count: count, delta: lc.bucket - 1}
}

func (lc *LossyCounting) compress() {
	for k, e := range lc.entries {
		if e.count+e.delta <= lc.bucket {
			delete(lc.entries, k)
		}
	}
}

// Estimate returns the retained count of key (0 if evicted). The true
// frequency lies in [estimate, estimate + epsilon*N].
func (lc *LossyCounting) Estimate(key uint64) int64 {
	if e, ok := lc.entries[key]; ok {
		return e.count
	}
	return 0
}

// EstimateBatch answers a batch of point queries against a single load of
// the entry table.
func (lc *LossyCounting) EstimateBatch(keys []uint64, out []int64) {
	if len(keys) != len(out) {
		panic("sketch: EstimateBatch slice length mismatch")
	}
	entries := lc.entries
	for i, key := range keys {
		if e, ok := entries[key]; ok {
			out[i] = e.count
		} else {
			out[i] = 0
		}
	}
}

// EstimateUpper returns the upper bound estimate count+delta, which some
// applications prefer for one-sided guarantees symmetrical with CountMin.
func (lc *LossyCounting) EstimateUpper(key uint64) int64 {
	if e, ok := lc.entries[key]; ok {
		return e.count + e.delta
	}
	return lc.bucket - 1
}

// Count returns the total stream volume added.
func (lc *LossyCounting) Count() int64 { return lc.total }

// Entries returns the number of retained items.
func (lc *LossyCounting) Entries() int { return len(lc.entries) }

// MemoryBytes approximates the current footprint of the entry table.
func (lc *LossyCounting) MemoryBytes() int { return len(lc.entries) * lossyEntryBytes }

// Reset clears the synopsis.
func (lc *LossyCounting) Reset() {
	lc.entries = make(map[uint64]*lossyEntry)
	lc.total = 0
	lc.bucket = 1
}

var _ Synopsis = (*LossyCounting)(nil)

// Exact is a map-backed exact counter implementing Synopsis. It is the
// ground-truth oracle for tests and experiment harnesses, and a degenerate
// "sketch" for tiny streams.
type Exact struct {
	counts map[uint64]int64
	total  int64
}

// NewExact returns an empty exact counter.
func NewExact() *Exact {
	return &Exact{counts: make(map[uint64]int64)}
}

// Update adds count occurrences of key.
func (e *Exact) Update(key uint64, count int64) {
	if count < 0 {
		panic("sketch: negative update in cash-register model")
	}
	if count == 0 {
		return
	}
	e.counts[key] += count
	e.total += count
}

// UpdateBatch applies the batch in slice order against a single map load.
func (e *Exact) UpdateBatch(keys []uint64, counts []int64) {
	if len(keys) != len(counts) {
		panic("sketch: UpdateBatch slice length mismatch")
	}
	m := e.counts
	var total int64
	for i, key := range keys {
		count := counts[i]
		if count < 0 {
			panic("sketch: negative update in cash-register model")
		}
		if count == 0 {
			continue
		}
		m[key] += count
		total += count
	}
	e.total += total
}

// Estimate returns the exact accumulated count of key.
func (e *Exact) Estimate(key uint64) int64 { return e.counts[key] }

// EstimateBatch answers a batch of point queries against a single map load.
func (e *Exact) EstimateBatch(keys []uint64, out []int64) {
	if len(keys) != len(out) {
		panic("sketch: EstimateBatch slice length mismatch")
	}
	m := e.counts
	for i, key := range keys {
		out[i] = m[key]
	}
}

// Count returns the total stream volume added.
func (e *Exact) Count() int64 { return e.total }

// Distinct returns the number of distinct keys observed.
func (e *Exact) Distinct() int { return len(e.counts) }

// MemoryBytes approximates the footprint of the counter table.
func (e *Exact) MemoryBytes() int { return len(e.counts) * 40 }

// Reset clears the counter.
func (e *Exact) Reset() {
	e.counts = make(map[uint64]int64)
	e.total = 0
}

// Range calls fn for every (key, count) pair; iteration order is undefined.
// Returning false from fn stops the iteration.
func (e *Exact) Range(fn func(key uint64, count int64) bool) {
	for k, v := range e.counts {
		if !fn(k, v) {
			return
		}
	}
}

var _ Synopsis = (*Exact)(nil)
