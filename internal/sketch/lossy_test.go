package sketch

import (
	"testing"
	"testing/quick"

	"github.com/graphstream/gsketch/internal/hashutil"
)

func TestLossyCountingGuarantee(t *testing.T) {
	// est ≤ f and f - est ≤ ε·N: the one-sided undercount bound.
	const eps = 0.01
	lc, err := NewLossyCounting(eps)
	if err != nil {
		t.Fatal(err)
	}
	truth := make(map[uint64]int64)
	rng := hashutil.NewRNG(2)
	var n int64
	for i := 0; i < 50000; i++ {
		k := rng.Uint64() % 3000
		lc.Update(k, 1)
		truth[k]++
		n++
	}
	bound := int64(eps*float64(n)) + 1
	for k, f := range truth {
		est := lc.Estimate(k)
		if est > f {
			t.Fatalf("key %d: estimate %d exceeds truth %d", k, est, f)
		}
		if f-est > bound {
			t.Fatalf("key %d: undercount %d exceeds bound %d", k, f-est, bound)
		}
		if upper := lc.EstimateUpper(k); upper < f-bound || est > upper+bound {
			t.Fatalf("key %d: upper estimate %d inconsistent (f=%d est=%d)", k, upper, f, est)
		}
	}
}

func TestLossyCountingEvictsRareItems(t *testing.T) {
	lc, _ := NewLossyCounting(0.1) // bucket width 10
	// One heavy item and a parade of singletons.
	for i := 0; i < 1000; i++ {
		lc.Update(1, 1)
		lc.Update(uint64(1000+i), 1)
	}
	if lc.Estimate(1) == 0 {
		t.Error("heavy hitter evicted")
	}
	if lc.Entries() > 200 {
		t.Errorf("%d entries retained; singletons should be evicted", lc.Entries())
	}
}

func TestLossyCountingBulkEquivalence(t *testing.T) {
	// Update(k, n) must behave exactly like n unit updates.
	f := func(keys []uint8, bulk uint8) bool {
		a, _ := NewLossyCounting(0.05)
		b, _ := NewLossyCounting(0.05)
		n := int64(bulk%7) + 1
		for _, k8 := range keys {
			k := uint64(k8 % 16)
			a.Update(k, n)
			for j := int64(0); j < n; j++ {
				b.Update(k, 1)
			}
		}
		if a.Count() != b.Count() {
			return false
		}
		for k := uint64(0); k < 16; k++ {
			if a.Estimate(k) != b.Estimate(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLossyCountingReset(t *testing.T) {
	lc, _ := NewLossyCounting(0.1)
	lc.Update(1, 100)
	lc.Reset()
	if lc.Estimate(1) != 0 || lc.Count() != 0 || lc.Entries() != 0 {
		t.Error("reset did not clear")
	}
}

func TestLossyCountingInvalid(t *testing.T) {
	if _, err := NewLossyCounting(0); err == nil {
		t.Error("zero epsilon accepted")
	}
	if _, err := NewLossyCounting(1); err == nil {
		t.Error("epsilon = 1 accepted")
	}
	lc, _ := NewLossyCounting(0.1)
	assertPanics(t, "negative update", func() { lc.Update(1, -5) })
}

func TestExactCounterSynopsis(t *testing.T) {
	e := NewExact()
	e.Update(1, 5)
	e.Update(1, 3)
	e.Update(2, 1)
	if e.Estimate(1) != 8 || e.Estimate(2) != 1 || e.Estimate(3) != 0 {
		t.Error("exact estimates wrong")
	}
	if e.Count() != 9 || e.Distinct() != 2 {
		t.Errorf("count=%d distinct=%d", e.Count(), e.Distinct())
	}
	seen := 0
	e.Range(func(k uint64, v int64) bool { seen++; return true })
	if seen != 2 {
		t.Errorf("range visited %d keys", seen)
	}
	// Early-stop contract.
	seen = 0
	e.Range(func(k uint64, v int64) bool { seen++; return false })
	if seen != 1 {
		t.Errorf("range ignored early stop, visited %d", seen)
	}
	e.Reset()
	if e.Count() != 0 || e.Distinct() != 0 {
		t.Error("reset did not clear")
	}
}
