package sketch

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Binary serialization for CountMin sketches. The format is
// little-endian and self-describing:
//
//	magic    uint32  'GSCM'
//	version  uint32
//	width    uint64
//	depth    uint64
//	seed     uint64
//	flags    uint64  (bit 0: conservative update)
//	total    uint64
//	cells    width*depth * uint32
//	crc32    uint32  (IEEE, over everything above)
//
// The hash family is reconstructed from the seed, so the stored state is
// complete.

const (
	cmMagic = 0x4753434d // "GSCM"
	// cmVersion 2: the row-hash range reduction changed from mod-width to
	// Lemire multiply-shift, so counters written by version 1 live in
	// different cells — version-1 files must fail loudly, not load and
	// estimate garbage.
	cmVersion = 2

	flagConservative = 1 << 0
)

// ErrCorrupt reports a malformed or truncated serialized sketch.
var ErrCorrupt = fmt.Errorf("sketch: corrupt serialized data")

type crcWriter struct {
	w   io.Writer
	crc uint32
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	cw.crc = crc32.Update(cw.crc, crc32.IEEETable, p)
	return cw.w.Write(p)
}

type crcReader struct {
	r   io.Reader
	crc uint32
}

func (cr *crcReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.crc = crc32.Update(cr.crc, crc32.IEEETable, p[:n])
	return n, err
}

// WriteTo serializes the sketch. It implements io.WriterTo.
func (cm *CountMin) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	cw := &crcWriter{w: bw}
	var n int64

	writeU32 := func(v uint32) error {
		var buf [4]byte
		binary.LittleEndian.PutUint32(buf[:], v)
		k, err := cw.Write(buf[:])
		n += int64(k)
		return err
	}
	writeU64 := func(v uint64) error {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], v)
		k, err := cw.Write(buf[:])
		n += int64(k)
		return err
	}

	var flags uint64
	if cm.conservative {
		flags |= flagConservative
	}
	if err := writeU32(cmMagic); err != nil {
		return n, err
	}
	if err := writeU32(cmVersion); err != nil {
		return n, err
	}
	for _, v := range []uint64{uint64(cm.width), uint64(cm.depth), cm.seed, flags, uint64(cm.total)} {
		if err := writeU64(v); err != nil {
			return n, err
		}
	}
	// Cells in bulk, 4 bytes each.
	buf := make([]byte, 4*4096)
	for off := 0; off < len(cm.cells); {
		chunk := len(cm.cells) - off
		if chunk > 4096 {
			chunk = 4096
		}
		for i := 0; i < chunk; i++ {
			binary.LittleEndian.PutUint32(buf[i*4:], cm.cells[off+i])
		}
		k, err := cw.Write(buf[:chunk*4])
		n += int64(k)
		if err != nil {
			return n, err
		}
		off += chunk
	}
	// Trailing CRC (not itself CRC'd).
	var crcBuf [4]byte
	binary.LittleEndian.PutUint32(crcBuf[:], cw.crc)
	k, err := bw.Write(crcBuf[:])
	n += int64(k)
	if err != nil {
		return n, err
	}
	return n, bw.Flush()
}

// ReadCountMin deserializes a sketch written by WriteTo, verifying the
// checksum and reconstructing the hash family from the stored seed.
func ReadCountMin(r io.Reader) (*CountMin, error) {
	cr := &crcReader{r: bufio.NewReader(r)}

	readU32 := func() (uint32, error) {
		var buf [4]byte
		if _, err := io.ReadFull(cr, buf[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(buf[:]), nil
	}
	readU64 := func() (uint64, error) {
		var buf [8]byte
		if _, err := io.ReadFull(cr, buf[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(buf[:]), nil
	}

	magic, err := readU32()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if magic != cmMagic {
		return nil, fmt.Errorf("%w: bad magic %#x", ErrCorrupt, magic)
	}
	version, err := readU32()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if version != cmVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, version)
	}
	var hdr [5]uint64
	for i := range hdr {
		if hdr[i], err = readU64(); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
	}
	width, depth, seed, flags, total := int(hdr[0]), int(hdr[1]), hdr[2], hdr[3], int64(hdr[4])
	const maxCells = 1 << 31 // 8 GiB of cells; anything larger is corrupt
	if width <= 0 || depth <= 0 || int64(width)*int64(depth) > maxCells {
		return nil, fmt.Errorf("%w: implausible dimensions %dx%d", ErrCorrupt, depth, width)
	}
	cm, err := NewCountMin(width, depth, seed)
	if err != nil {
		return nil, err
	}
	cm.conservative = flags&flagConservative != 0
	cm.total = total

	buf := make([]byte, 4*4096)
	for off := 0; off < len(cm.cells); {
		chunk := len(cm.cells) - off
		if chunk > 4096 {
			chunk = 4096
		}
		if _, err := io.ReadFull(cr, buf[:chunk*4]); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		for i := 0; i < chunk; i++ {
			cm.cells[off+i] = binary.LittleEndian.Uint32(buf[i*4:])
		}
		off += chunk
	}
	want := cr.crc
	var crcBuf [4]byte
	if _, err := io.ReadFull(cr.r, crcBuf[:]); err != nil {
		return nil, fmt.Errorf("%w: missing checksum: %v", ErrCorrupt, err)
	}
	if got := binary.LittleEndian.Uint32(crcBuf[:]); got != want {
		return nil, fmt.Errorf("%w: checksum mismatch (stored %#x, computed %#x)", ErrCorrupt, got, want)
	}
	return cm, nil
}
