package sketch

import (
	"bytes"
	"errors"
	"testing"

	"github.com/graphstream/gsketch/internal/hashutil"
)

func buildPopulated(t *testing.T, conservative bool) *CountMin {
	t.Helper()
	cm, err := NewCountMin(300, 4, 1234)
	if err != nil {
		t.Fatal(err)
	}
	cm.SetConservative(conservative)
	rng := hashutil.NewRNG(1)
	for i := 0; i < 10000; i++ {
		cm.Update(rng.Uint64()%700, int64(i%5)+1)
	}
	return cm
}

func TestCountMinSerializeRoundTrip(t *testing.T) {
	for _, conservative := range []bool{false, true} {
		cm := buildPopulated(t, conservative)
		var buf bytes.Buffer
		if _, err := cm.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := ReadCountMin(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.Width() != cm.Width() || got.Depth() != cm.Depth() || got.Seed() != cm.Seed() {
			t.Fatal("dimensions not preserved")
		}
		if got.Count() != cm.Count() {
			t.Fatalf("count %d != %d", got.Count(), cm.Count())
		}
		for k := uint64(0); k < 700; k++ {
			if got.Estimate(k) != cm.Estimate(k) {
				t.Fatalf("key %d: %d != %d", k, got.Estimate(k), cm.Estimate(k))
			}
		}
	}
}

func TestCountMinSerializeDetectsCorruption(t *testing.T) {
	cm := buildPopulated(t, false)
	var buf bytes.Buffer
	if _, err := cm.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	pristine := buf.Bytes()

	// Flip one byte in the cell region.
	corrupted := append([]byte(nil), pristine...)
	corrupted[len(corrupted)/2] ^= 0xFF
	if _, err := ReadCountMin(bytes.NewReader(corrupted)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("bit flip not detected: %v", err)
	}

	// Truncate.
	if _, err := ReadCountMin(bytes.NewReader(pristine[:len(pristine)/3])); !errors.Is(err, ErrCorrupt) {
		t.Errorf("truncation not detected: %v", err)
	}

	// Bad magic.
	bad := append([]byte(nil), pristine...)
	bad[0] ^= 0xFF
	if _, err := ReadCountMin(bytes.NewReader(bad)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("bad magic not detected: %v", err)
	}

	// Empty input.
	if _, err := ReadCountMin(bytes.NewReader(nil)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("empty input not detected: %v", err)
	}
}

func TestCountMinSerializeRejectsImplausibleDims(t *testing.T) {
	cm := buildPopulated(t, false)
	var buf bytes.Buffer
	if _, err := cm.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Overwrite the width field (offset 8: after magic+version) with a
	// huge value; the reader must reject before allocating.
	for i := 8; i < 16; i++ {
		data[i] = 0xFF
	}
	if _, err := ReadCountMin(bytes.NewReader(data)); err == nil {
		t.Error("implausible dimensions accepted")
	}
}
