// Package sketch implements the frequency synopses that gsketch builds on:
// the CountMin sketch (Cormode & Muthukrishnan), an optional
// conservative-update variant, the CountSketch (AMS-style median estimator),
// Lossy Counting (Manku & Motwani) and an exact map-backed counter used for
// ground truth in tests and experiments.
//
// All synopses summarize a stream of (key, count) increments over 64-bit
// keys and answer point frequency estimates. They share the Synopsis
// interface so the partitioned estimator in internal/core can run over any
// of them.
package sketch

import (
	"errors"
	"fmt"
	"math"
)

// Synopsis is a frequency summary of a stream of non-negative increments.
type Synopsis interface {
	// Update adds count occurrences of key. count must be non-negative.
	Update(key uint64, count int64)
	// UpdateBatch applies counts[i] occurrences of keys[i] for every i, in
	// slice order, exactly as the equivalent sequence of Update calls would.
	// The two slices must have equal length. Implementations amortize
	// per-call dispatch and bounds checks across the batch.
	UpdateBatch(keys []uint64, counts []int64)
	// Estimate returns the estimated accumulated count of key.
	Estimate(key uint64) int64
	// EstimateBatch writes Estimate(keys[i]) into out[i] for every i. The
	// two slices must have equal length. Implementations amortize dispatch,
	// scratch allocation and (where the layout allows) row traversal across
	// the batch; results are identical to per-key Estimate calls.
	EstimateBatch(keys []uint64, out []int64)
	// Count returns the total of all increments applied (the stream volume
	// N routed to this synopsis).
	Count() int64
	// MemoryBytes reports the memory footprint of the counter storage.
	MemoryBytes() int
	// Reset clears the synopsis to its empty state.
	Reset()
}

// CellSize is the size in bytes of one sketch counter cell. All byte-budget
// arithmetic in this module uses this constant, mirroring the 32-bit
// counters of the paper-era C++ implementations.
const CellSize = 4

// maxCell is the saturation point of a 32-bit counter cell.
const maxCell = math.MaxUint32

// ErrInvalidParams reports an unusable sketch configuration.
var ErrInvalidParams = errors.New("sketch: invalid parameters")

// DimsFromError returns the CountMin dimensions guaranteeing, with
// probability at least 1-delta, that estimates exceed the true frequency by
// at most epsilon*N: w = ceil(e/epsilon), d = ceil(ln(1/delta)).
func DimsFromError(epsilon, delta float64) (width, depth int, err error) {
	if !(epsilon > 0 && epsilon < 1) || !(delta > 0 && delta < 1) {
		return 0, 0, fmt.Errorf("%w: epsilon=%v delta=%v (need 0<eps<1, 0<delta<1)", ErrInvalidParams, epsilon, delta)
	}
	width = int(math.Ceil(math.E / epsilon))
	depth = int(math.Ceil(math.Log(1 / delta)))
	if depth < 1 {
		depth = 1
	}
	return width, depth, nil
}

// WidthFromMemory returns the widest row count that fits a byte budget at
// the given depth: floor(bytes / (depth*CellSize)).
func WidthFromMemory(bytes, depth int) (int, error) {
	if bytes <= 0 || depth <= 0 {
		return 0, fmt.Errorf("%w: bytes=%d depth=%d", ErrInvalidParams, bytes, depth)
	}
	w := bytes / (depth * CellSize)
	if w < 1 {
		return 0, fmt.Errorf("%w: budget of %d bytes cannot fit depth %d", ErrInvalidParams, bytes, depth)
	}
	return w, nil
}

func addSat32(cell uint32, count int64) uint32 {
	sum := uint64(cell) + uint64(count)
	if sum > maxCell {
		return maxCell
	}
	return uint32(sum)
}
