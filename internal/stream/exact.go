package stream

// ExactCounter is the ground-truth oracle for experiments: exact per-edge
// frequencies and per-vertex aggregates, backed by hash maps. It is only
// feasible at experiment scale (the whole point of the paper is that real
// deployments cannot afford it).
type ExactCounter struct {
	edges    map[[2]uint64]int64
	vertexF  map[uint64]int64 // f_v(i): summed out-edge frequency per source
	vertexD  map[uint64]int64 // d(i): distinct out-degree per source
	total    int64
	arrivals int64
}

// NewExactCounter returns an empty counter.
func NewExactCounter() *ExactCounter {
	return &ExactCounter{
		edges:   make(map[[2]uint64]int64),
		vertexF: make(map[uint64]int64),
		vertexD: make(map[uint64]int64),
	}
}

// Observe accumulates one edge arrival.
func (c *ExactCounter) Observe(e Edge) {
	w := e.Weight
	if w == 0 {
		w = 1
	}
	k := [2]uint64{e.Src, e.Dst}
	if _, seen := c.edges[k]; !seen {
		c.vertexD[e.Src]++
	}
	c.edges[k] += w
	c.vertexF[e.Src] += w
	c.total += w
	c.arrivals++
}

// ObserveAll accumulates a slice of arrivals.
func (c *ExactCounter) ObserveAll(edges []Edge) {
	for _, e := range edges {
		c.Observe(e)
	}
}

// EdgeFrequency returns the exact accumulated frequency of (src, dst).
func (c *ExactCounter) EdgeFrequency(src, dst uint64) int64 {
	return c.edges[[2]uint64{src, dst}]
}

// VertexFrequency returns f_v(src): the summed frequency of edges
// emanating from src (Eq. 2).
func (c *ExactCounter) VertexFrequency(src uint64) int64 { return c.vertexF[src] }

// OutDegree returns d(src): the number of distinct out-edges of src (Eq. 3).
func (c *ExactCounter) OutDegree(src uint64) int64 { return c.vertexD[src] }

// Total returns the summed weight of all arrivals (the stream volume N).
func (c *ExactCounter) Total() int64 { return c.total }

// Arrivals returns the number of Observe calls.
func (c *ExactCounter) Arrivals() int64 { return c.arrivals }

// DistinctEdges returns the number of distinct directed edges observed.
func (c *ExactCounter) DistinctEdges() int { return len(c.edges) }

// DistinctSources returns the number of distinct source vertices observed.
func (c *ExactCounter) DistinctSources() int { return len(c.vertexF) }

// RangeEdges calls fn for each distinct (src, dst, frequency); iteration
// order is undefined. Returning false stops the iteration.
func (c *ExactCounter) RangeEdges(fn func(src, dst uint64, freq int64) bool) {
	for k, f := range c.edges {
		if !fn(k[0], k[1], f) {
			return
		}
	}
}

// Edges returns all distinct edges with their exact frequencies as Edge
// values (Weight = exact frequency). Order is unspecified.
func (c *ExactCounter) Edges() []Edge {
	out := make([]Edge, 0, len(c.edges))
	for k, f := range c.edges {
		out = append(out, Edge{Src: k[0], Dst: k[1], Weight: f})
	}
	return out
}
