package stream

import (
	"testing"
)

func TestExactCounter(t *testing.T) {
	c := NewExactCounter()
	c.Observe(Edge{Src: 1, Dst: 2, Weight: 3})
	c.Observe(Edge{Src: 1, Dst: 2, Weight: 2})
	c.Observe(Edge{Src: 1, Dst: 3}) // zero weight counts as 1
	c.Observe(Edge{Src: 4, Dst: 1, Weight: 7})

	if got := c.EdgeFrequency(1, 2); got != 5 {
		t.Errorf("f(1,2) = %d, want 5", got)
	}
	if got := c.EdgeFrequency(1, 3); got != 1 {
		t.Errorf("f(1,3) = %d, want 1", got)
	}
	if got := c.EdgeFrequency(9, 9); got != 0 {
		t.Errorf("f(9,9) = %d, want 0", got)
	}
	if got := c.VertexFrequency(1); got != 6 {
		t.Errorf("fv(1) = %d, want 6 (Eq. 2)", got)
	}
	if got := c.OutDegree(1); got != 2 {
		t.Errorf("d(1) = %d, want 2 (Eq. 3)", got)
	}
	if c.Total() != 13 || c.Arrivals() != 4 {
		t.Errorf("total=%d arrivals=%d", c.Total(), c.Arrivals())
	}
	if c.DistinctEdges() != 3 || c.DistinctSources() != 2 {
		t.Errorf("distinct=%d sources=%d", c.DistinctEdges(), c.DistinctSources())
	}
	edges := c.Edges()
	if len(edges) != 3 {
		t.Errorf("Edges() returned %d", len(edges))
	}
	var sum int64
	c.RangeEdges(func(s, d uint64, f int64) bool { sum += f; return true })
	if sum != 13 {
		t.Errorf("range sum = %d, want 13", sum)
	}
	// Early stop.
	n := 0
	c.RangeEdges(func(s, d uint64, f int64) bool { n++; return false })
	if n != 1 {
		t.Errorf("early stop ignored, visited %d", n)
	}
}

func TestVarianceStatsBands(t *testing.T) {
	// Two pure per-source frequency bands: local variance 0, global
	// variance positive, ratio 0-division-guarded.
	c := NewExactCounter()
	for d := uint64(0); d < 10; d++ {
		c.Observe(Edge{Src: 1, Dst: d, Weight: 100}) // heavy source
		c.Observe(Edge{Src: 2, Dst: d, Weight: 1})   // light source
	}
	st := ComputeVarianceStats(c)
	if st.LocalVariance != 0 {
		t.Errorf("local variance = %v, want 0 for pure bands", st.LocalVariance)
	}
	if st.GlobalVariance <= 0 {
		t.Errorf("global variance = %v, want > 0", st.GlobalVariance)
	}
	if st.Ratio != 0 {
		t.Errorf("ratio should be 0 when local variance is 0 (guard), got %v", st.Ratio)
	}
	if st.DistinctEdges != 20 || st.Sources != 2 {
		t.Errorf("distinct=%d sources=%d", st.DistinctEdges, st.Sources)
	}
}

func TestVarianceStatsMixedSource(t *testing.T) {
	// A source with within-variance: σ_V > 0 and ratio finite.
	c := NewExactCounter()
	c.Observe(Edge{Src: 1, Dst: 1, Weight: 10})
	c.Observe(Edge{Src: 1, Dst: 2, Weight: 20})
	c.Observe(Edge{Src: 2, Dst: 1, Weight: 100})
	c.Observe(Edge{Src: 2, Dst: 2, Weight: 200})
	st := ComputeVarianceStats(c)
	// Per-source population variances: src1 var(10,20)=25, src2 var(100,200)=2500; mean 1262.5.
	if st.LocalVariance != 1262.5 {
		t.Errorf("local variance = %v, want 1262.5", st.LocalVariance)
	}
	// Global variance over {10,20,100,200}: mean 82.5,
	// var = 50500/4 − 82.5² = 5818.75.
	if st.GlobalVariance != 5818.75 {
		t.Errorf("global variance = %v, want 5818.75", st.GlobalVariance)
	}
	want := 5818.75 / 1262.5
	if st.Ratio < want-1e-9 || st.Ratio > want+1e-9 {
		t.Errorf("ratio = %v, want %v", st.Ratio, want)
	}
}

func TestVarianceStatsEmpty(t *testing.T) {
	st := ComputeVarianceStats(NewExactCounter())
	if st.DistinctEdges != 0 || st.Ratio != 0 {
		t.Error("empty counter should yield zero stats")
	}
}
