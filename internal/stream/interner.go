package stream

// Interner maps string vertex labels to dense uint64 ids and back. Graph
// streams with labeled vertices (author names, IP addresses) intern labels
// once and carry uint64 ids through the hot path, mirroring the paper's
// l(x)⊕l(y) keying without re-hashing strings per arrival.
//
// Ids are assigned densely from 0 in first-seen order, so they double as
// indices into per-vertex statistic arrays. Not safe for concurrent use.
type Interner struct {
	ids    map[string]uint64
	labels []string
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	return &Interner{ids: make(map[string]uint64)}
}

// Intern returns the id for label, assigning the next dense id on first use.
func (in *Interner) Intern(label string) uint64 {
	if id, ok := in.ids[label]; ok {
		return id
	}
	id := uint64(len(in.labels))
	in.ids[label] = id
	in.labels = append(in.labels, label)
	return id
}

// Lookup returns the id for label without interning.
func (in *Interner) Lookup(label string) (uint64, bool) {
	id, ok := in.ids[label]
	return id, ok
}

// Label returns the label for id, or "" if id was never assigned.
func (in *Interner) Label(id uint64) string {
	if id >= uint64(len(in.labels)) {
		return ""
	}
	return in.labels[id]
}

// Len returns the number of interned labels.
func (in *Interner) Len() int { return len(in.labels) }
