package stream

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Edge-file formats.
//
// Text: one edge per line, "src dst [weight [time]]", '#' comments and
// blank lines skipped — the common exchange format for graph datasets.
//
// Binary: "GSED" magic, version, count, then count fixed 32-byte records
// (src, dst, weight, time as little-endian uint64/int64). Dense, seekable,
// and ~6x faster to load than text.

const (
	edgeMagic   = 0x47534544 // "GSED"
	edgeVersion = 1
)

// ErrBadFormat reports an unparsable edge file.
var ErrBadFormat = errors.New("stream: bad edge file format")

// WriteTextEdges writes edges in text form: "src dst weight time".
func WriteTextEdges(w io.Writer, edges []Edge) error {
	bw := bufio.NewWriter(w)
	for _, e := range edges {
		if _, err := fmt.Fprintf(bw, "%d %d %d %d\n", e.Src, e.Dst, e.Weight, e.Time); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTextEdges parses a text edge file. Missing weight defaults to 1,
// missing time to 0.
func ReadTextEdges(r io.Reader) ([]Edge, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	var edges []Edge
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("%w: line %d: need at least src and dst", ErrBadFormat, lineNo)
		}
		var e Edge
		var err error
		if e.Src, err = strconv.ParseUint(fields[0], 10, 64); err != nil {
			return nil, fmt.Errorf("%w: line %d: src: %v", ErrBadFormat, lineNo, err)
		}
		if e.Dst, err = strconv.ParseUint(fields[1], 10, 64); err != nil {
			return nil, fmt.Errorf("%w: line %d: dst: %v", ErrBadFormat, lineNo, err)
		}
		e.Weight = 1
		if len(fields) >= 3 {
			if e.Weight, err = strconv.ParseInt(fields[2], 10, 64); err != nil {
				return nil, fmt.Errorf("%w: line %d: weight: %v", ErrBadFormat, lineNo, err)
			}
		}
		if len(fields) >= 4 {
			if e.Time, err = strconv.ParseInt(fields[3], 10, 64); err != nil {
				return nil, fmt.Errorf("%w: line %d: time: %v", ErrBadFormat, lineNo, err)
			}
		}
		edges = append(edges, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return edges, nil
}

// WriteBinaryEdges writes edges in the dense binary format.
func WriteBinaryEdges(w io.Writer, edges []Edge) error {
	bw := bufio.NewWriter(w)
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:], edgeMagic)
	binary.LittleEndian.PutUint32(hdr[4:], edgeVersion)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(len(edges)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var rec [32]byte
	for _, e := range edges {
		binary.LittleEndian.PutUint64(rec[0:], e.Src)
		binary.LittleEndian.PutUint64(rec[8:], e.Dst)
		binary.LittleEndian.PutUint64(rec[16:], uint64(e.Weight))
		binary.LittleEndian.PutUint64(rec[24:], uint64(e.Time))
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinaryEdges parses the dense binary format.
func ReadBinaryEdges(r io.Reader) ([]Edge, error) {
	br := bufio.NewReader(r)
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrBadFormat, err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != edgeMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadFormat)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != edgeVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadFormat, v)
	}
	count := binary.LittleEndian.Uint64(hdr[8:])
	const maxEdges = 1 << 33
	if count > maxEdges {
		return nil, fmt.Errorf("%w: implausible edge count %d", ErrBadFormat, count)
	}
	edges := make([]Edge, count)
	var rec [32]byte
	for i := range edges {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("%w: record %d: %v", ErrBadFormat, i, err)
		}
		edges[i] = Edge{
			Src:    binary.LittleEndian.Uint64(rec[0:]),
			Dst:    binary.LittleEndian.Uint64(rec[8:]),
			Weight: int64(binary.LittleEndian.Uint64(rec[16:])),
			Time:   int64(binary.LittleEndian.Uint64(rec[24:])),
		}
	}
	return edges, nil
}

// CountingWriter counts bytes on their way to an io.Writer, so callers
// can report written sizes (or tell "error before the first byte" from a
// mid-stream failure) around APIs that do not return a count.
type CountingWriter struct {
	W io.Writer
	N int64
}

// Write implements io.Writer.
func (c *CountingWriter) Write(p []byte) (int, error) {
	n, err := c.W.Write(p)
	c.N += int64(n)
	return n, err
}
