package stream

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func sampleEdges() []Edge {
	return []Edge{
		{Src: 1, Dst: 2, Weight: 3, Time: 100},
		{Src: 0, Dst: 0, Weight: 1, Time: 0},
		{Src: 1<<63 + 5, Dst: 42, Weight: 1 << 40, Time: -1},
	}
}

func TestTextRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTextEdges(&buf, sampleEdges()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTextEdges(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := sampleEdges()
	if len(got) != len(want) {
		t.Fatalf("got %d edges, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("edge %d: %+v != %+v", i, got[i], want[i])
		}
	}
}

func TestTextDefaultsAndComments(t *testing.T) {
	in := `# comment line
1 2

3 4 9
5 6 7 8
`
	got, err := ReadTextEdges(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []Edge{
		{Src: 1, Dst: 2, Weight: 1},
		{Src: 3, Dst: 4, Weight: 9},
		{Src: 5, Dst: 6, Weight: 7, Time: 8},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d edges, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("edge %d: %+v != %+v", i, got[i], want[i])
		}
	}
}

func TestTextMalformed(t *testing.T) {
	cases := []string{
		"1\n",
		"a b\n",
		"1 b\n",
		"1 2 x\n",
		"1 2 3 y\n",
	}
	for _, in := range cases {
		if _, err := ReadTextEdges(strings.NewReader(in)); !errors.Is(err, ErrBadFormat) {
			t.Errorf("input %q: error = %v, want ErrBadFormat", in, err)
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBinaryEdges(&buf, sampleEdges()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinaryEdges(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := sampleEdges()
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("edge %d: %+v != %+v", i, got[i], want[i])
		}
	}
}

func TestBinaryRoundTripProperty(t *testing.T) {
	f := func(srcs, dsts []uint64) bool {
		n := len(srcs)
		if len(dsts) < n {
			n = len(dsts)
		}
		edges := make([]Edge, n)
		for i := 0; i < n; i++ {
			edges[i] = Edge{Src: srcs[i], Dst: dsts[i], Weight: int64(i), Time: int64(i * 3)}
		}
		var buf bytes.Buffer
		if err := WriteBinaryEdges(&buf, edges); err != nil {
			return false
		}
		got, err := ReadBinaryEdges(&buf)
		if err != nil {
			return false
		}
		if len(got) != len(edges) {
			return false
		}
		for i := range edges {
			if got[i] != edges[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestBinaryMalformed(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBinaryEdges(&buf, sampleEdges()); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	if _, err := ReadBinaryEdges(bytes.NewReader(data[:10])); !errors.Is(err, ErrBadFormat) {
		t.Errorf("truncated header: %v", err)
	}
	if _, err := ReadBinaryEdges(bytes.NewReader(data[:20])); !errors.Is(err, ErrBadFormat) {
		t.Errorf("truncated records: %v", err)
	}
	bad := append([]byte(nil), data...)
	bad[0] ^= 0xFF
	if _, err := ReadBinaryEdges(bytes.NewReader(bad)); !errors.Is(err, ErrBadFormat) {
		t.Errorf("bad magic: %v", err)
	}
	// Implausible count.
	huge := append([]byte(nil), data[:16]...)
	for i := 8; i < 16; i++ {
		huge[i] = 0xFF
	}
	if _, err := ReadBinaryEdges(bytes.NewReader(huge)); !errors.Is(err, ErrBadFormat) {
		t.Errorf("implausible count: %v", err)
	}
}
