package stream

import (
	"github.com/graphstream/gsketch/internal/hashutil"
)

// Reservoir maintains a uniform random sample of fixed capacity over an
// unbounded edge stream using Vitter's Algorithm R: the i-th arrival
// replaces a uniformly random slot with probability capacity/i. The paper
// uses reservoir sampling to draw the data samples that drive sketch
// partitioning (§6.3) and the per-window samples of §5.
type Reservoir struct {
	capacity int
	seen     int64
	sample   []Edge
	rng      *hashutil.RNG
}

// NewReservoir returns a reservoir holding at most capacity edges,
// deterministic under seed. capacity must be positive.
func NewReservoir(capacity int, seed uint64) *Reservoir {
	if capacity <= 0 {
		panic("stream: reservoir capacity must be positive")
	}
	return &Reservoir{
		capacity: capacity,
		sample:   make([]Edge, 0, capacity),
		rng:      hashutil.NewRNG(seed),
	}
}

// Observe offers one edge to the reservoir.
func (r *Reservoir) Observe(e Edge) {
	r.seen++
	if len(r.sample) < r.capacity {
		r.sample = append(r.sample, e)
		return
	}
	// Replace a random slot with probability capacity/seen.
	j := r.rng.Uint64() % uint64(r.seen)
	if j < uint64(r.capacity) {
		r.sample[j] = e
	}
}

// ObserveAll offers every edge of a slice.
func (r *Reservoir) ObserveAll(edges []Edge) {
	for _, e := range edges {
		r.Observe(e)
	}
}

// Sample returns the current sample. The returned slice aliases internal
// state; callers that keep it across further Observe calls must copy it.
func (r *Reservoir) Sample() []Edge { return r.sample }

// Seen returns the number of edges observed so far.
func (r *Reservoir) Seen() int64 { return r.seen }

// Capacity returns the maximum sample size.
func (r *Reservoir) Capacity() int { return r.capacity }

// Reset clears the reservoir, keeping its RNG stream position.
func (r *Reservoir) Reset() {
	r.sample = r.sample[:0]
	r.seen = 0
}
