package stream

import (
	"testing"
)

func TestReservoirCapacity(t *testing.T) {
	r := NewReservoir(10, 1)
	for i := 0; i < 1000; i++ {
		r.Observe(Edge{Src: uint64(i)})
	}
	if len(r.Sample()) != 10 {
		t.Errorf("sample size = %d, want 10", len(r.Sample()))
	}
	if r.Seen() != 1000 {
		t.Errorf("seen = %d, want 1000", r.Seen())
	}
	if r.Capacity() != 10 {
		t.Errorf("capacity = %d", r.Capacity())
	}
}

func TestReservoirShortStream(t *testing.T) {
	r := NewReservoir(100, 1)
	for i := 0; i < 5; i++ {
		r.Observe(Edge{Src: uint64(i)})
	}
	if len(r.Sample()) != 5 {
		t.Errorf("sample size = %d, want 5 (short stream keeps everything)", len(r.Sample()))
	}
}

func TestReservoirUniformity(t *testing.T) {
	// Each of 1000 stream positions should land in a 100-slot reservoir
	// with probability ~0.1; accumulate inclusion counts over many runs
	// and check first/last-half balance.
	const streamLen, capacity, runs = 1000, 100, 300
	counts := make([]int, streamLen)
	for run := 0; run < runs; run++ {
		r := NewReservoir(capacity, uint64(run))
		for i := 0; i < streamLen; i++ {
			r.Observe(Edge{Src: uint64(i)})
		}
		for _, e := range r.Sample() {
			counts[e.Src]++
		}
	}
	firstHalf, secondHalf := 0, 0
	for i, c := range counts {
		if i < streamLen/2 {
			firstHalf += c
		} else {
			secondHalf += c
		}
	}
	total := firstHalf + secondHalf
	if total != capacity*runs {
		t.Fatalf("total inclusions = %d, want %d", total, capacity*runs)
	}
	ratio := float64(firstHalf) / float64(total)
	if ratio < 0.46 || ratio > 0.54 {
		t.Errorf("first-half inclusion share = %.3f, want ≈ 0.5 (Algorithm R uniformity)", ratio)
	}
}

func TestReservoirDeterministic(t *testing.T) {
	a, b := NewReservoir(50, 7), NewReservoir(50, 7)
	for i := 0; i < 5000; i++ {
		e := Edge{Src: uint64(i), Dst: uint64(i * 2)}
		a.Observe(e)
		b.Observe(e)
	}
	sa, sb := a.Sample(), b.Sample()
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatal("same seed produced different samples")
		}
	}
}

func TestReservoirReset(t *testing.T) {
	r := NewReservoir(5, 1)
	r.ObserveAll([]Edge{{Src: 1}, {Src: 2}})
	r.Reset()
	if len(r.Sample()) != 0 || r.Seen() != 0 {
		t.Error("reset did not clear")
	}
}

func TestReservoirPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-positive capacity")
		}
	}()
	NewReservoir(0, 1)
}
