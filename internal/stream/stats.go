package stream

// VarianceStats reports the edge-frequency dispersion statistics of §6.1:
// the global variance σ_G of distinct-edge frequencies and the average
// per-source local variance σ_V, whose ratio σ_G/σ_V quantifies the local
// similarity property gSketch exploits (paper: 3.674 for DBLP, 10.107 for
// the IP attack network, 4.156 for GTGraph).
type VarianceStats struct {
	GlobalVariance float64 // σ_G: variance of frequencies over distinct edges
	LocalVariance  float64 // σ_V: mean over sources of per-source frequency variance
	Ratio          float64 // σ_G / σ_V (0 when σ_V == 0)
	DistinctEdges  int
	Sources        int
}

// ComputeVarianceStats derives the §6.1 statistics from an exact counter.
// Sources with a single distinct out-edge contribute zero local variance,
// matching the population-variance convention.
func ComputeVarianceStats(c *ExactCounter) VarianceStats {
	var st VarianceStats
	st.DistinctEdges = c.DistinctEdges()
	st.Sources = c.DistinctSources()
	if st.DistinctEdges == 0 {
		return st
	}

	// Global variance over all distinct edge frequencies (population).
	var sum, sumSq float64
	perSource := make(map[uint64]*srcAcc, st.Sources)
	c.RangeEdges(func(src, dst uint64, f int64) bool {
		x := float64(f)
		sum += x
		sumSq += x * x
		a := perSource[src]
		if a == nil {
			a = &srcAcc{}
			perSource[src] = a
		}
		a.n++
		a.sum += x
		a.sumSq += x * x
		return true
	})
	n := float64(st.DistinctEdges)
	mean := sum / n
	st.GlobalVariance = sumSq/n - mean*mean
	if st.GlobalVariance < 0 {
		st.GlobalVariance = 0 // numeric guard
	}

	var localSum float64
	for _, a := range perSource {
		m := a.sum / float64(a.n)
		v := a.sumSq/float64(a.n) - m*m
		if v < 0 {
			v = 0
		}
		localSum += v
	}
	st.LocalVariance = localSum / float64(len(perSource))
	if st.LocalVariance > 0 {
		st.Ratio = st.GlobalVariance / st.LocalVariance
	}
	return st
}

type srcAcc struct {
	n     int64
	sum   float64
	sumSq float64
}
