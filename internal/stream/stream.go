// Package stream defines the graph-stream data model of the paper: a
// sequence of directed, timestamped, weighted edges over a vertex universe
// identified by 64-bit ids (with optional string labels via Interner).
//
// It also provides the stream-side substrates the experiments need:
// reservoir sampling (Vitter's Algorithm R), an exact ground-truth edge
// counter, the global/local variance statistics of §6.1, and text/binary
// edge-file readers and writers.
package stream

import (
	"github.com/graphstream/gsketch/internal/hashutil"
)

// Edge is one graph-stream element (x, y; t) with an optional frequency
// weight (default 1 in the paper's model).
type Edge struct {
	Src uint64 // source vertex id
	Dst uint64 // destination vertex id
	// Weight is the frequency increment carried by this arrival, e.g. call
	// seconds in a telecom stream. The paper's default is 1.
	Weight int64
	// Time is an application timestamp (opaque to the sketches; the window
	// store segments on it).
	Time int64
}

// Key returns the 64-bit sketch key of the directed edge.
func (e Edge) Key() uint64 { return hashutil.EdgeKey(e.Src, e.Dst) }

// EdgeKey returns the sketch key for the directed pair (src, dst) without
// materializing an Edge.
func EdgeKey(src, dst uint64) uint64 { return hashutil.EdgeKey(src, dst) }

// Source is a pull-based stream of edges. Next returns false when the
// stream is exhausted; Err reports a terminal error, if any.
type Source interface {
	Next() (Edge, bool)
	Err() error
}

// SliceSource adapts an in-memory edge slice to Source.
type SliceSource struct {
	edges []Edge
	pos   int
}

// NewSliceSource returns a Source over edges. The slice is not copied.
func NewSliceSource(edges []Edge) *SliceSource { return &SliceSource{edges: edges} }

// Next returns the next edge.
func (s *SliceSource) Next() (Edge, bool) {
	if s.pos >= len(s.edges) {
		return Edge{}, false
	}
	e := s.edges[s.pos]
	s.pos++
	return e, true
}

// Err always returns nil for a slice source.
func (s *SliceSource) Err() error { return nil }

// Reset rewinds the source to the beginning.
func (s *SliceSource) Reset() { s.pos = 0 }

// Drain reads a source to exhaustion and returns the collected edges.
func Drain(src Source) ([]Edge, error) {
	var out []Edge
	for {
		e, ok := src.Next()
		if !ok {
			break
		}
		out = append(out, e)
	}
	return out, src.Err()
}
