package stream

import (
	"testing"
)

func TestSliceSource(t *testing.T) {
	edges := []Edge{{Src: 1, Dst: 2, Weight: 1}, {Src: 3, Dst: 4, Weight: 2}}
	src := NewSliceSource(edges)
	got, err := Drain(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != edges[0] || got[1] != edges[1] {
		t.Errorf("drain = %v", got)
	}
	if _, ok := src.Next(); ok {
		t.Error("exhausted source yielded an edge")
	}
	src.Reset()
	if e, ok := src.Next(); !ok || e != edges[0] {
		t.Error("reset did not rewind")
	}
}

func TestEdgeKeyConsistent(t *testing.T) {
	e := Edge{Src: 10, Dst: 20}
	if e.Key() != EdgeKey(10, 20) {
		t.Error("Edge.Key disagrees with EdgeKey")
	}
	if EdgeKey(10, 20) == EdgeKey(20, 10) {
		t.Error("directed edge keys must differ")
	}
}

func TestInterner(t *testing.T) {
	in := NewInterner()
	a := in.Intern("alice")
	b := in.Intern("bob")
	if a == b {
		t.Error("distinct labels share an id")
	}
	if got := in.Intern("alice"); got != a {
		t.Errorf("re-intern = %d, want %d", got, a)
	}
	if in.Len() != 2 {
		t.Errorf("len = %d, want 2", in.Len())
	}
	if in.Label(a) != "alice" || in.Label(b) != "bob" {
		t.Error("label lookup failed")
	}
	if in.Label(99) != "" {
		t.Error("unknown id should yield empty label")
	}
	if id, ok := in.Lookup("bob"); !ok || id != b {
		t.Error("lookup failed")
	}
	if _, ok := in.Lookup("carol"); ok {
		t.Error("lookup of unknown label succeeded")
	}
	// Dense ids in first-seen order.
	if a != 0 || b != 1 {
		t.Errorf("ids not dense: a=%d b=%d", a, b)
	}
}
