// Package tenant multiplexes many named gsketch engines behind one
// serving process: a lifecycle-managed Registry of tenants, each an
// independent sketch with its own quotas, reachable through a Handle
// that implements the server's Backend interface — so the whole
// HTTP/wire surface becomes tenant-scoped without the handlers knowing.
//
// The design axis is density: gSketch instances are cheap (a fixed
// memory budget each), so one process can host thousands of tenants as
// long as only the hot set is resident. The Registry enforces that with
// a MaxResident LRU cap — a cold tenant is snapshotted to its own
// directory and its engine closed; the next access reopens it from the
// snapshot transparently (the caller just sees a slower request).
// Byte-identical estimates across the evict→reopen round trip are the
// correctness contract, inherited from the engine's snapshot format.
//
// Quotas map onto the server's existing backpressure semantics: each
// tenant has an edge-rate token bucket (ErrRateLimited carries the same
// accepted-prefix contract as gsketch.ErrIngestQueueFull, so a 429 with
// the accepted count falls out of the existing handler), a per-tenant
// ingest queue bound, and a per-tenant sketch memory budget.
//
// On disk the registry is a directory tree —
//
//	<dir>/manifest.json         tenant catalog (atomic tmp+rename)
//	<dir>/<name>/gsketch.snap   one snapshot per tenant
//
// — so a restart resumes the same tenant set with every tenant cold.
package tenant
