package tenant

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sync"
	"sync/atomic"
	"time"

	gsketch "github.com/graphstream/gsketch"
	"github.com/graphstream/gsketch/internal/core"
	"github.com/graphstream/gsketch/internal/stream"
)

// Registry errors. All are matched with errors.Is.
var (
	// ErrNotFound reports an operation against a tenant that does not
	// exist (never created, or deleted).
	ErrNotFound = errors.New("tenant: not found")
	// ErrBadName reports a tenant name outside [A-Za-z0-9_-]{1,64}.
	ErrBadName = errors.New("tenant: invalid name (want [A-Za-z0-9_-]{1,64})")
	// ErrClosed reports an operation against a closed registry.
	ErrClosed = errors.New("tenant: registry is closed")
	// ErrRateLimited reports an ingest cut short by the tenant's edge-rate
	// token bucket. Like gsketch.ErrIngestQueueFull it carries
	// accepted-prefix semantics: the edges before the cut were taken.
	ErrRateLimited = errors.New("tenant: edge rate limit exceeded")
)

var nameRE = regexp.MustCompile(`^[A-Za-z0-9_-]{1,64}$`)

// ValidName reports whether name is a legal tenant name. The charset is
// deliberately path- and label-safe: names become snapshot directories
// and Prometheus label values verbatim.
func ValidName(name string) bool { return nameRE.MatchString(name) }

// Overrides are the per-tenant knobs an admin can set at create time
// (PUT /t/{tenant} body) — each zero value inherits the registry-wide
// default. Rate and burst apply immediately; queue depth, sketch bytes
// and seed shape the engine and take effect at the next (re)open.
type Overrides struct {
	// MaxEdgesPerSec caps the tenant's ingest rate via a token bucket
	// (negative = unlimited, overriding a registry-wide default).
	MaxEdgesPerSec float64 `json:"max_edges_per_sec,omitempty"`
	// Burst is the token bucket capacity (default: one second of rate).
	Burst int `json:"burst,omitempty"`
	// QueueDepth overrides the ingest pipeline queue bound.
	QueueDepth int `json:"queue_depth,omitempty"`
	// SketchBytes overrides the sketch memory budget.
	SketchBytes int `json:"sketch_bytes,omitempty"`
	// Seed overrides the sketch hash seed.
	Seed uint64 `json:"seed,omitempty"`
}

// Quotas are the registry-wide per-tenant defaults, overridable per
// tenant through Overrides.
type Quotas struct {
	// MaxEdgesPerSec caps each tenant's ingest rate (0 = unlimited).
	MaxEdgesPerSec float64
	// Burst is the token bucket capacity (default: one second of rate).
	Burst int
}

// DefaultSample is the bootstrap sample for tenants created without a
// registry-wide Config.Sample. Every tenant engine must snapshot (the
// evict→reopen lifecycle depends on it) and only partitioned sketches
// serialize, so a minimal one-edge sample stands in for the global
// baseline: it yields a single-partition sketch with the same CountMin
// guarantees, just no workload-aware routing.
func DefaultSample() []stream.Edge {
	return []stream.Edge{{Src: 0, Dst: 0, Weight: 1}}
}

// Config parameterizes a Registry.
type Config struct {
	// Dir is the registry root: the manifest plus one snapshot directory
	// per tenant live under it. Required.
	Dir string
	// MaxResident caps the number of tenants with a live engine; the
	// least-recently-used tenant is snapshotted to disk and closed to
	// make room (0 = unlimited).
	MaxResident int
	// Sketch is the sketch configuration every tenant engine is built
	// from (Overrides.SketchBytes/Seed refine it per tenant).
	Sketch gsketch.Config
	// Sample bootstraps each fresh tenant's partitioned sketch; with no
	// sample, tenants fall back to DefaultSample (single partition).
	Sample []stream.Edge
	// Ingest parameterizes each tenant's batch pipeline (zero value =
	// ingest package defaults; Overrides.QueueDepth refines it).
	Ingest gsketch.IngestConfig
	// Quotas are the per-tenant defaults.
	Quotas Quotas
	// Now overrides the clock, for tests.
	Now func() time.Time
	// OnReopen/OnEvict observe lifecycle latencies (engine open-on-access
	// and snapshot-to-disk eviction) — the hooks serving histograms and
	// benchmarks hang off. Called with the registry lock held; keep them
	// cheap.
	OnReopen func(time.Duration)
	OnEvict  func(time.Duration)
}

// tenant is one registered tenant. eng is nil while the tenant is
// evicted (or never yet opened); ov and eng are guarded by mu, and all
// lifecycle transitions additionally hold the registry lock.
type tenant struct {
	name string

	mu      sync.RWMutex
	eng     *gsketch.Engine
	ov      Overrides
	deleted bool

	lastUse atomic.Int64 // unix nanos of the last data-path access

	// Token bucket state, guarded by tbMu (taken only while holding
	// mu.RLock, so ov reads inside are stable).
	tbMu       sync.Mutex
	tokens     float64
	lastRefill time.Time

	edges       atomic.Int64 // edges accepted
	queries     atomic.Int64 // queries answered
	rateLimited atomic.Int64 // ingests cut short by the token bucket
}

// Registry is a lifecycle-managed set of named engines: create/delete
// administration, per-tenant quotas, and an LRU cap that snapshots cold
// tenants to disk and transparently reopens them on access. All methods
// are safe for concurrent use.
type Registry struct {
	cfg Config
	now func() time.Time

	mu       sync.Mutex // serializes lifecycle: create/delete/evict/reopen/close
	tenants  map[string]*tenant
	resident int
	closed   bool

	evictions atomic.Int64
	reopens   atomic.Int64
}

// New opens (or resumes) a registry rooted at cfg.Dir. An existing
// manifest is loaded: its tenants exist immediately but stay cold until
// first access.
func New(cfg Config) (*Registry, error) {
	if cfg.Dir == "" {
		return nil, errors.New("tenant: Config.Dir is required")
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("tenant: %w", err)
	}
	r := &Registry{cfg: cfg, now: cfg.Now, tenants: make(map[string]*tenant)}
	m, err := readManifest(r.manifestPath())
	if err != nil {
		return nil, err
	}
	for name, ov := range m.Tenants {
		if !ValidName(name) {
			return nil, fmt.Errorf("%w: %q in manifest", ErrBadName, name)
		}
		r.tenants[name] = r.newTenant(name, ov)
	}
	return r, nil
}

func (r *Registry) newTenant(name string, ov Overrides) *tenant {
	t := &tenant{name: name, ov: ov, lastRefill: r.now()}
	t.tokens = float64(r.burst(ov))
	t.lastUse.Store(r.now().UnixNano())
	return t
}

// rate resolves a tenant's effective edge rate: the override, or the
// registry default; <= 0 means unlimited.
func (r *Registry) rate(ov Overrides) float64 {
	if ov.MaxEdgesPerSec != 0 {
		return ov.MaxEdgesPerSec
	}
	return r.cfg.Quotas.MaxEdgesPerSec
}

func (r *Registry) burst(ov Overrides) int {
	if ov.Burst > 0 {
		return ov.Burst
	}
	if r.cfg.Quotas.Burst > 0 {
		return r.cfg.Quotas.Burst
	}
	// Default: one second of the effective rate.
	if rate := r.rate(ov); rate > 0 {
		return int(rate)
	}
	return 0
}

func (r *Registry) manifestPath() string { return filepath.Join(r.cfg.Dir, "manifest.json") }

// SnapshotFile is the snapshot location of the named tenant.
func (r *Registry) SnapshotFile(name string) string {
	return filepath.Join(r.cfg.Dir, name, "gsketch.snap")
}

// manifest is the on-disk tenant catalog, written atomically on every
// create/delete so a restart resumes the same tenant set.
type manifest struct {
	Schema  int                  `json:"schema"`
	Tenants map[string]Overrides `json:"tenants"`
}

func readManifest(path string) (manifest, error) {
	m := manifest{Schema: 1, Tenants: map[string]Overrides{}}
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return m, nil
	}
	if err != nil {
		return m, fmt.Errorf("tenant: manifest: %w", err)
	}
	if err := json.Unmarshal(data, &m); err != nil {
		return m, fmt.Errorf("tenant: manifest: %w", err)
	}
	if m.Schema != 1 {
		return m, fmt.Errorf("tenant: manifest schema %d unsupported", m.Schema)
	}
	if m.Tenants == nil {
		m.Tenants = map[string]Overrides{}
	}
	return m, nil
}

// writeManifestLocked persists the tenant catalog via tmp + rename.
// Caller holds r.mu.
func (r *Registry) writeManifestLocked() error {
	m := manifest{Schema: 1, Tenants: make(map[string]Overrides, len(r.tenants))}
	for name, t := range r.tenants {
		m.Tenants[name] = t.ov
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(r.cfg.Dir, ".manifest-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), r.manifestPath())
}

// Create registers a tenant (idempotently: re-creating an existing one
// updates its overrides instead) and persists the manifest. The engine
// is not built here — tenants open lazily on first access.
func (r *Registry) Create(name string, ov Overrides) (created bool, err error) {
	if !ValidName(name) {
		return false, ErrBadName
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return false, ErrClosed
	}
	if t := r.tenants[name]; t != nil {
		t.mu.Lock()
		t.ov = ov
		t.mu.Unlock()
		return false, r.writeManifestLocked()
	}
	if err := os.MkdirAll(filepath.Join(r.cfg.Dir, name), 0o755); err != nil {
		return false, fmt.Errorf("tenant: %w", err)
	}
	r.tenants[name] = r.newTenant(name, ov)
	return true, r.writeManifestLocked()
}

// Delete drops a tenant: its engine (if resident) is closed without a
// final snapshot, its snapshot directory is removed, and the manifest
// is rewritten. In-flight requests holding the tenant's handle fail
// with ErrNotFound from then on.
func (r *Registry) Delete(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return ErrClosed
	}
	t := r.tenants[name]
	if t == nil {
		return ErrNotFound
	}
	t.mu.Lock()
	t.deleted = true
	eng := t.eng
	t.eng = nil
	t.mu.Unlock()
	if eng != nil {
		_ = eng.Close()
		r.resident--
	}
	delete(r.tenants, name)
	if err := os.RemoveAll(filepath.Join(r.cfg.Dir, name)); err != nil {
		return fmt.Errorf("tenant: %w", err)
	}
	return r.writeManifestLocked()
}

// Tenant returns a Backend-shaped handle on the named tenant, or
// ErrNotFound. The handle stays valid across evictions (access reopens
// the engine transparently) and fails with ErrNotFound after a delete.
func (r *Registry) Tenant(name string) (*Handle, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, ErrClosed
	}
	t := r.tenants[name]
	if t == nil {
		return nil, ErrNotFound
	}
	return &Handle{r: r, t: t}, nil
}

// Info is one tenant's administrative view.
type Info struct {
	Name     string `json:"name"`
	Resident bool   `json:"resident"`
	// StreamTotal/QueueDepth are live engine gauges, zero while evicted
	// (the state is on disk, not gone).
	StreamTotal int64 `json:"stream_total"`
	QueueDepth  int   `json:"queue_depth"`
	// EdgesAccepted/Queries/RateLimited are cumulative since the registry
	// opened (they survive evictions, not restarts).
	EdgesAccepted int64     `json:"edges_accepted"`
	Queries       int64     `json:"queries"`
	RateLimited   int64     `json:"rate_limited"`
	LastUse       time.Time `json:"last_use"`
	Overrides     Overrides `json:"overrides"`
}

func (r *Registry) infoLocked(t *tenant) Info {
	in := Info{
		Name:          t.name,
		Resident:      t.eng != nil,
		EdgesAccepted: t.edges.Load(),
		Queries:       t.queries.Load(),
		RateLimited:   t.rateLimited.Load(),
		LastUse:       time.Unix(0, t.lastUse.Load()),
		Overrides:     t.ov,
	}
	if t.eng != nil {
		in.StreamTotal = t.eng.Estimator().Count()
		if is := t.eng.IngestStats(); is != nil {
			in.QueueDepth = is.QueueDepth
		}
	}
	return in
}

// Get returns one tenant's Info, or ErrNotFound.
func (r *Registry) Get(name string) (Info, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	t := r.tenants[name]
	if t == nil {
		return Info{}, ErrNotFound
	}
	return r.infoLocked(t), nil
}

// List returns every tenant's Info, sorted by name.
func (r *Registry) List() []Info {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Info, 0, len(r.tenants))
	for _, t := range r.tenants {
		out = append(out, r.infoLocked(t))
	}
	sortInfos(out)
	return out
}

func sortInfos(in []Info) {
	for i := 1; i < len(in); i++ {
		for j := i; j > 0 && in[j].Name < in[j-1].Name; j-- {
			in[j], in[j-1] = in[j-1], in[j]
		}
	}
}

// Stats is the registry-level gauge snapshot.
type Stats struct {
	Tenants   int   `json:"tenants"`
	Resident  int   `json:"resident"`
	Evictions int64 `json:"evictions"`
	Reopens   int64 `json:"reopens"`
}

// AddObservers chains lifecycle observers onto the registry after
// construction — the server attaches its latency histograms here
// without owning the Config. Like the Config hooks, the observers run
// with the registry lock held; keep them cheap.
func (r *Registry) AddObservers(onReopen, onEvict func(time.Duration)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if onReopen != nil {
		if prev := r.cfg.OnReopen; prev != nil {
			r.cfg.OnReopen = func(d time.Duration) { prev(d); onReopen(d) }
		} else {
			r.cfg.OnReopen = onReopen
		}
	}
	if onEvict != nil {
		if prev := r.cfg.OnEvict; prev != nil {
			r.cfg.OnEvict = func(d time.Duration) { prev(d); onEvict(d) }
		} else {
			r.cfg.OnEvict = onEvict
		}
	}
}

// RegistryStats reports the registry-level gauges.
func (r *Registry) RegistryStats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return Stats{
		Tenants:   len(r.tenants),
		Resident:  r.resident,
		Evictions: r.evictions.Load(),
		Reopens:   r.reopens.Load(),
	}
}

// Close snapshots every resident tenant to its directory and closes the
// engines. Later data-path access fails with ErrClosed.
func (r *Registry) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil
	}
	r.closed = true
	var firstErr error
	for _, t := range r.tenants {
		t.mu.Lock()
		if t.eng != nil {
			if _, err := t.eng.SaveSnapshot(""); err != nil && firstErr == nil {
				firstErr = err
			}
			if err := t.eng.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
			t.eng = nil
			r.resident--
		}
		t.mu.Unlock()
	}
	return firstErr
}

// openEngine builds the named tenant's engine: restored from its
// snapshot when one exists (the evict→reopen path), bootstrapped fresh
// otherwise. Caller holds r.mu.
func (r *Registry) openEngine(t *tenant) (*gsketch.Engine, error) {
	cfg := r.cfg.Sketch
	if t.ov.SketchBytes > 0 {
		cfg.TotalBytes = t.ov.SketchBytes
		cfg.TotalWidth = 0
	}
	if t.ov.Seed != 0 {
		cfg.Seed = t.ov.Seed
	}
	ing := r.cfg.Ingest
	if t.ov.QueueDepth > 0 {
		ing.QueueDepth = t.ov.QueueDepth
	}
	snap := r.SnapshotFile(t.name)
	opts := []gsketch.Option{
		gsketch.WithIngest(ing),
		gsketch.WithSnapshotFile(snap),
	}
	switch _, err := os.Stat(snap); {
	case err == nil:
		opts = append(opts, gsketch.WithRestoreFile(snap))
	case len(r.cfg.Sample) > 0:
		opts = append(opts, gsketch.WithSample(r.cfg.Sample))
	default:
		opts = append(opts, gsketch.WithSample(DefaultSample()))
	}
	eng, err := gsketch.Open(cfg, opts...)
	if err != nil {
		return nil, fmt.Errorf("tenant %s: %w", t.name, err)
	}
	return eng, nil
}

// reopen makes t resident: evicts LRU tenants past the cap, then opens
// t's engine. It is the slow path of every data-path access to a cold
// tenant; r.mu serializes it against all other lifecycle changes.
func (r *Registry) reopen(t *tenant) error {
	start := r.now()
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return ErrClosed
	}
	// t.eng and t.deleted only change under r.mu, which we hold.
	if t.deleted {
		return ErrNotFound
	}
	if t.eng != nil {
		return nil // lost the race to another reopener; fine
	}
	if err := r.makeRoomLocked(); err != nil {
		return err
	}
	eng, err := r.openEngine(t)
	if err != nil {
		return err
	}
	t.mu.Lock()
	t.eng = eng
	t.mu.Unlock()
	r.resident++
	r.reopens.Add(1)
	if r.cfg.OnReopen != nil {
		r.cfg.OnReopen(r.now().Sub(start))
	}
	return nil
}

// makeRoomLocked evicts least-recently-used resident tenants until the
// cap admits one more. Caller holds r.mu.
func (r *Registry) makeRoomLocked() error {
	max := r.cfg.MaxResident
	if max <= 0 {
		return nil
	}
	for r.resident >= max {
		var victim *tenant
		for _, t := range r.tenants {
			if t.eng == nil {
				continue
			}
			if victim == nil || t.lastUse.Load() < victim.lastUse.Load() {
				victim = t
			}
		}
		if victim == nil {
			return nil // resident count and map disagree; do not loop forever
		}
		if err := r.evictLocked(victim); err != nil {
			return err
		}
	}
	return nil
}

// evictLocked snapshots a resident tenant to its directory and closes
// the engine. The tenant's write lock is held across the save, so no
// request can observe a half-closed engine. Caller holds r.mu.
func (r *Registry) evictLocked(t *tenant) error {
	start := r.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.eng == nil {
		return nil
	}
	if _, err := t.eng.SaveSnapshot(""); err != nil {
		// Keep the tenant resident: losing its state to free memory is
		// the wrong trade.
		return fmt.Errorf("tenant %s: evict snapshot: %w", t.name, err)
	}
	err := t.eng.Close()
	t.eng = nil
	r.resident--
	r.evictions.Add(1)
	if r.cfg.OnEvict != nil {
		r.cfg.OnEvict(r.now().Sub(start))
	}
	if err != nil {
		return fmt.Errorf("tenant %s: evict close: %w", t.name, err)
	}
	return nil
}

// take grants up to n edge tokens from the tenant's bucket, refilling
// by elapsed time first. Called with t.mu read-held (ov is stable).
func (t *tenant) take(r *Registry, n int) int {
	rate := r.rate(t.ov)
	if rate <= 0 {
		return n
	}
	burst := float64(r.burst(t.ov))
	now := r.now()
	t.tbMu.Lock()
	defer t.tbMu.Unlock()
	if elapsed := now.Sub(t.lastRefill).Seconds(); elapsed > 0 {
		t.tokens = minF(burst, t.tokens+elapsed*rate)
	}
	t.lastRefill = now
	grant := n
	if g := int(t.tokens); g < grant {
		grant = g
	}
	t.tokens -= float64(grant)
	return grant
}

// refund returns tokens the engine shed after the bucket granted them,
// so engine backpressure does not double-charge the quota.
func (t *tenant) refund(r *Registry, n int) {
	if n <= 0 {
		return
	}
	burst := float64(r.burst(t.ov))
	t.tbMu.Lock()
	t.tokens = minF(burst, t.tokens+float64(n))
	t.tbMu.Unlock()
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// Handle is one tenant's serving surface — it implements the server's
// Backend interface, so every endpoint and wire frame the server maps
// onto a Backend works per-tenant unchanged. Operations on an evicted
// tenant transparently reopen it (evicting an LRU peer if the registry
// is at its resident cap).
type Handle struct {
	r *Registry
	t *tenant
}

// Name returns the tenant's name.
func (h *Handle) Name() string { return h.t.name }

// withEngine runs fn against the tenant's live engine, reopening it
// first if evicted. The tenant read lock is held across fn, so an
// eviction (which takes the write lock) cannot close the engine under
// a request.
func (h *Handle) withEngine(fn func(*gsketch.Engine) error) error {
	t := h.t
	for {
		t.mu.RLock()
		if t.deleted {
			t.mu.RUnlock()
			return ErrNotFound
		}
		if t.eng != nil {
			t.lastUse.Store(h.r.now().UnixNano())
			err := fn(t.eng)
			t.mu.RUnlock()
			return err
		}
		t.mu.RUnlock()
		if err := h.r.reopen(t); err != nil {
			return err
		}
	}
}

// TryIngest offers edges without blocking, charging the tenant's token
// bucket first: the granted prefix goes to the engine, engine-shed
// tokens are refunded, and a bucket cut surfaces as ErrRateLimited with
// the accepted prefix (the engine's own queue-full keeps its
// gsketch.ErrIngestQueueFull identity).
func (h *Handle) TryIngest(edges []stream.Edge) (int, error) {
	var accepted int
	err := h.withEngine(func(eng *gsketch.Engine) error {
		granted := h.t.take(h.r, len(edges))
		var err error
		accepted, err = eng.TryIngest(edges[:granted])
		if accepted < granted {
			h.t.refund(h.r, granted-accepted)
		}
		h.t.edges.Add(int64(accepted))
		if err != nil {
			return err
		}
		if granted < len(edges) {
			h.t.rateLimited.Add(1)
			return ErrRateLimited
		}
		return nil
	})
	return accepted, err
}

// QueryBatch answers edge queries against the tenant's engine.
func (h *Handle) QueryBatch(qs []core.EdgeQuery) ([]core.Result, error) {
	var rs []core.Result
	err := h.withEngine(func(eng *gsketch.Engine) error {
		rs = eng.QueryBatch(qs)
		h.t.queries.Add(int64(len(qs)))
		return nil
	})
	return rs, err
}

// Drain waits, bounded by ctx, until the tenant's accepted edges are
// applied.
func (h *Handle) Drain(ctx context.Context) error {
	return h.withEngine(func(eng *gsketch.Engine) error { return eng.Drain(ctx) })
}

// SaveSnapshot persists the tenant's sketch (path empty = its
// registry-assigned snapshot file).
func (h *Handle) SaveSnapshot(path string) (int64, error) {
	var n int64
	err := h.withEngine(func(eng *gsketch.Engine) error {
		var err error
		n, err = eng.SaveSnapshot(path)
		return err
	})
	return n, err
}

// RestoreSnapshot swaps the tenant's state in from disk.
func (h *Handle) RestoreSnapshot(path string) error {
	return h.withEngine(func(eng *gsketch.Engine) error { return eng.RestoreSnapshot(path) })
}

// SnapshotPath is the tenant's snapshot file under the registry tree.
func (h *Handle) SnapshotPath() string { return h.r.SnapshotFile(h.t.name) }

// Generations counts the tenant's sketch generations (reopening it if
// evicted).
func (h *Handle) Generations() int {
	gens := 1
	_ = h.withEngine(func(eng *gsketch.Engine) error {
		gens = eng.Generations()
		return nil
	})
	return gens
}

// Health reports the tenant's liveness gauges (reopening it if
// evicted — a health probe is an access like any other).
func (h *Handle) Health() (streamTotal int64, queueDepth, generations int) {
	generations = 1
	_ = h.withEngine(func(eng *gsketch.Engine) error {
		streamTotal = eng.Estimator().Count()
		if is := eng.IngestStats(); is != nil {
			queueDepth = is.QueueDepth
		}
		generations = eng.Generations()
		return nil
	})
	return streamTotal, queueDepth, generations
}

// Close is a no-op: tenant lifecycle belongs to the Registry (the
// server shuts the registry down, not individual handles).
func (h *Handle) Close() error { return nil }
