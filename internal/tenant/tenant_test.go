package tenant

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	gsketch "github.com/graphstream/gsketch"
	"github.com/graphstream/gsketch/internal/core"
	"github.com/graphstream/gsketch/internal/hashutil"
	"github.com/graphstream/gsketch/internal/stream"
)

func testStream(n int, seed uint64) []stream.Edge {
	rng := hashutil.NewRNG(seed)
	edges := make([]stream.Edge, n)
	for i := range edges {
		edges[i] = stream.Edge{
			Src:    rng.Uint64() % 500,
			Dst:    rng.Uint64() % 1500,
			Weight: int64(rng.Uint64()%4) + 1,
			Time:   int64(i),
		}
	}
	return edges
}

func testConfig(t *testing.T) Config {
	t.Helper()
	return Config{
		Dir:    t.TempDir(),
		Sketch: gsketch.Config{TotalBytes: 32 << 10, Seed: 7},
	}
}

func newTestRegistry(t *testing.T, cfg Config) *Registry {
	t.Helper()
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

func mustCreate(t *testing.T, r *Registry, name string, ov Overrides) *Handle {
	t.Helper()
	if _, err := r.Create(name, ov); err != nil {
		t.Fatal(err)
	}
	h, err := r.Tenant(name)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func ingestAll(t *testing.T, h *Handle, edges []stream.Edge) {
	t.Helper()
	for lo := 0; lo < len(edges); {
		n, err := h.TryIngest(edges[lo:])
		lo += n
		if err != nil && !errors.Is(err, gsketch.ErrIngestQueueFull) {
			t.Fatalf("ingest: %v", err)
		}
		if n == 0 {
			time.Sleep(time.Millisecond)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := h.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

func queries(edges []stream.Edge) []core.EdgeQuery {
	qs := make([]core.EdgeQuery, 0, 64)
	for i := 0; i < len(edges) && i < 64; i++ {
		qs = append(qs, core.EdgeQuery{Src: edges[i].Src, Dst: edges[i].Dst})
	}
	return qs
}

// TestTenantEquivalence is the isolation contract: two tenants ingesting
// disjoint streams must answer exactly like two standalone engines built
// from the same configuration — no cross-tenant bleed, no shared state.
func TestTenantEquivalence(t *testing.T) {
	cfg := testConfig(t)
	r := newTestRegistry(t, cfg)
	streams := map[string][]stream.Edge{
		"alpha": testStream(4000, 11),
		"beta":  testStream(4000, 22),
	}
	for name, edges := range streams {
		ingestAll(t, mustCreate(t, r, name, Overrides{}), edges)
	}
	for name, edges := range streams {
		h, err := r.Tenant(name)
		if err != nil {
			t.Fatal(err)
		}
		qs := queries(edges)
		got, err := h.QueryBatch(qs)
		if err != nil {
			t.Fatal(err)
		}

		eng, err := gsketch.Open(cfg.Sketch, gsketch.WithSample(DefaultSample()))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.TryIngest(edges); err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		if err := eng.Drain(ctx); err != nil {
			t.Fatal(err)
		}
		cancel()
		want := eng.QueryBatch(qs)
		eng.Close()

		for i := range qs {
			if got[i].Estimate != want[i].Estimate {
				t.Fatalf("tenant %s query %d: estimate %d, standalone %d",
					name, i, got[i].Estimate, want[i].Estimate)
			}
		}
	}
}

// TestQuotaAcceptedPrefix drives the token bucket with a fake clock: a
// burst-sized prefix is accepted, the rest is cut with ErrRateLimited,
// and elapsed time refills tokens at the configured rate.
func TestQuotaAcceptedPrefix(t *testing.T) {
	now := time.Unix(1000, 0)
	cfg := testConfig(t)
	cfg.Now = func() time.Time { return now }
	r := newTestRegistry(t, cfg)
	h := mustCreate(t, r, "limited", Overrides{MaxEdgesPerSec: 100, Burst: 10})

	edges := testStream(25, 3)
	accepted, err := h.TryIngest(edges)
	if !errors.Is(err, ErrRateLimited) {
		t.Fatalf("over-burst ingest: err %v, want ErrRateLimited", err)
	}
	if accepted != 10 {
		t.Fatalf("over-burst ingest: accepted %d, want burst 10", accepted)
	}

	// Empty bucket: nothing is accepted until time passes.
	accepted, err = h.TryIngest(edges[10:])
	if !errors.Is(err, ErrRateLimited) || accepted != 0 {
		t.Fatalf("drained bucket: accepted %d err %v, want 0 + ErrRateLimited", accepted, err)
	}

	// 50ms at 100 edges/s refills 5 tokens.
	now = now.Add(50 * time.Millisecond)
	accepted, err = h.TryIngest(edges[10:])
	if !errors.Is(err, ErrRateLimited) || accepted != 5 {
		t.Fatalf("after refill: accepted %d err %v, want 5 + ErrRateLimited", accepted, err)
	}

	// A batch inside the refilled budget passes cleanly.
	now = now.Add(time.Second)
	if accepted, err = h.TryIngest(edges[15:25]); err != nil || accepted != 10 {
		t.Fatalf("within budget: accepted %d err %v, want 10 + nil", accepted, err)
	}

	info, err := r.Get("limited")
	if err != nil {
		t.Fatal(err)
	}
	if info.RateLimited != 3 {
		t.Fatalf("rate-limited count %d, want 3", info.RateLimited)
	}
}

// TestEvictReopenRoundTrip pins the LRU lifecycle contract: a tenant
// evicted under the resident cap answers byte-identically after its
// transparent snapshot-reopen, and the lifecycle counters advance.
func TestEvictReopenRoundTrip(t *testing.T) {
	cfg := testConfig(t)
	cfg.MaxResident = 1
	r := newTestRegistry(t, cfg)

	edgesA := testStream(4000, 5)
	ha := mustCreate(t, r, "a", Overrides{})
	ingestAll(t, ha, edgesA)
	qs := queries(edgesA)
	before, err := ha.QueryBatch(qs)
	if err != nil {
		t.Fatal(err)
	}

	// Touching b forces a's eviction (cap 1): snapshot written, engine gone.
	hb := mustCreate(t, r, "b", Overrides{})
	ingestAll(t, hb, testStream(100, 6))
	if st := r.RegistryStats(); st.Resident != 1 || st.Evictions == 0 {
		t.Fatalf("after touching b: %+v, want 1 resident and >0 evictions", st)
	}
	if _, err := os.Stat(r.SnapshotFile("a")); err != nil {
		t.Fatalf("evicted tenant's snapshot: %v", err)
	}
	infoA, err := r.Get("a")
	if err != nil {
		t.Fatal(err)
	}
	if infoA.Resident {
		t.Fatal("tenant a still resident after eviction")
	}

	// First access after eviction reopens from snapshot, transparently.
	after, err := ha.QueryBatch(qs)
	if err != nil {
		t.Fatalf("query after eviction: %v", err)
	}
	for i := range qs {
		if after[i].Estimate != before[i].Estimate {
			t.Fatalf("query %d: estimate %d after reopen, %d before eviction",
				i, after[i].Estimate, before[i].Estimate)
		}
	}
	if st := r.RegistryStats(); st.Reopens == 0 {
		t.Fatalf("stats %+v, want >0 reopens", st)
	}
}

// TestManifestPersistence restarts the registry over the same directory:
// the tenant set, per-tenant overrides, and sketch state must all come
// back (cold, until first access).
func TestManifestPersistence(t *testing.T) {
	cfg := testConfig(t)
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	edges := testStream(2000, 9)
	ov := Overrides{MaxEdgesPerSec: -1, Burst: 500, SketchBytes: 16 << 10}
	ingestAll(t, mustCreate(t, r, "keeper", ov), edges)
	h, _ := r.Tenant("keeper")
	qs := queries(edges)
	before, err := h.QueryBatch(qs)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	r2 := newTestRegistry(t, cfg)
	info, err := r2.Get("keeper")
	if err != nil {
		t.Fatal(err)
	}
	if info.Resident {
		t.Fatal("tenant resident right after restart")
	}
	if info.Overrides != ov {
		t.Fatalf("overrides after restart: %+v, want %+v", info.Overrides, ov)
	}
	h2, err := r2.Tenant("keeper")
	if err != nil {
		t.Fatal(err)
	}
	after, err := h2.QueryBatch(qs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range qs {
		if after[i].Estimate != before[i].Estimate {
			t.Fatalf("query %d: estimate %d after restart, %d before", i, after[i].Estimate, before[i].Estimate)
		}
	}
}

// TestDeleteRemovesStateAndInvalidatesHandles checks delete semantics:
// the directory is gone, live handles fail with ErrNotFound, and the
// surviving tenant is untouched.
func TestDeleteRemovesStateAndInvalidatesHandles(t *testing.T) {
	r := newTestRegistry(t, testConfig(t))
	edges := testStream(500, 14)
	doomed := mustCreate(t, r, "doomed", Overrides{})
	ingestAll(t, doomed, edges)
	survivor := mustCreate(t, r, "survivor", Overrides{})
	ingestAll(t, survivor, edges)

	if err := r.Delete("doomed"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(r.cfg.Dir, "doomed")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("deleted tenant's directory: %v, want ErrNotExist", err)
	}
	if _, err := doomed.TryIngest(edges[:1]); !errors.Is(err, ErrNotFound) {
		t.Fatalf("ingest through stale handle: %v, want ErrNotFound", err)
	}
	if _, err := doomed.QueryBatch(queries(edges)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("query through stale handle: %v, want ErrNotFound", err)
	}
	if err := r.Delete("doomed"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete: %v, want ErrNotFound", err)
	}
	if _, err := survivor.QueryBatch(queries(edges)); err != nil {
		t.Fatalf("survivor query: %v", err)
	}
}

// TestCreateValidation rejects path- and label-hostile names and keeps
// create idempotent (override updates, no duplicate state).
func TestCreateValidation(t *testing.T) {
	r := newTestRegistry(t, testConfig(t))
	for _, bad := range []string{"", "a/b", "../up", "x y", "ünïcode", string(make([]byte, 65))} {
		if _, err := r.Create(bad, Overrides{}); !errors.Is(err, ErrBadName) {
			t.Fatalf("Create(%q): %v, want ErrBadName", bad, err)
		}
	}
	created, err := r.Create("dup", Overrides{})
	if err != nil || !created {
		t.Fatalf("first create: %v created=%v", err, created)
	}
	created, err = r.Create("dup", Overrides{MaxEdgesPerSec: 9})
	if err != nil || created {
		t.Fatalf("re-create: %v created=%v, want idempotent update", err, created)
	}
	info, err := r.Get("dup")
	if err != nil {
		t.Fatal(err)
	}
	if info.Overrides.MaxEdgesPerSec != 9 {
		t.Fatalf("re-create did not update overrides: %+v", info.Overrides)
	}
	if _, err := r.Tenant("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Tenant(missing): %v, want ErrNotFound", err)
	}
}
