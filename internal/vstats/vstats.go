// Package vstats derives the per-vertex statistics that drive sketch
// partitioning (§4 of the paper) from a data sample and, optionally, a
// query-workload sample:
//
//   - f̃v(m): the estimated relative vertex frequency — the summed weight of
//     sampled edges emanating from m (Eq. 2, estimated on the sample);
//   - d̃(m): the estimated out-degree — distinct out-edges of m in the
//     sample (Eq. 3);
//   - w̃(n): the relative query weight of n in the workload sample, with
//     Laplace (add-one) smoothing so vertices never seen in the workload
//     keep a nonzero weight (§6.4).
//
// The paper's key insight is that these vertex-level statistics are cheap,
// compact and — by local similarity — a reliable proxy for the unknowable
// per-edge frequencies.
package vstats

import (
	"fmt"
	"sort"

	"github.com/graphstream/gsketch/internal/stream"
)

// VertexStat aggregates the partitioning statistics of one source vertex.
type VertexStat struct {
	ID uint64
	// F is f̃v: summed sampled out-edge weight. Always > 0 for a vertex
	// present in the sample.
	F float64
	// D is d̃: distinct sampled out-edges. Always ≥ 1 for a present vertex.
	D float64
	// W is w̃: the (smoothed) relative workload weight. 1 until a workload
	// sample is applied.
	W float64
}

// AvgEdgeFreq returns f̃v(m)/d̃(m), the estimated average frequency of the
// edges emanating from the vertex — the scenario-A sort key.
func (v VertexStat) AvgEdgeFreq() float64 { return v.F / v.D }

// Stats holds per-vertex statistics for every distinct source vertex of a
// data sample.
type Stats struct {
	vertices []VertexStat
	index    map[uint64]int
	totalF   float64
	hasWork  bool
}

// FromSample computes vertex statistics from a data sample. Zero-weight
// sample edges count as weight 1, matching the paper's default frequency.
func FromSample(sample []stream.Edge) *Stats {
	s := &Stats{index: make(map[uint64]int)}
	seen := make(map[[2]uint64]struct{}, len(sample))
	for _, e := range sample {
		w := e.Weight
		if w == 0 {
			w = 1
		}
		i, ok := s.index[e.Src]
		if !ok {
			i = len(s.vertices)
			s.index[e.Src] = i
			s.vertices = append(s.vertices, VertexStat{ID: e.Src, W: 1})
		}
		s.vertices[i].F += float64(w)
		s.totalF += float64(w)
		k := [2]uint64{e.Src, e.Dst}
		if _, dup := seen[k]; !dup {
			seen[k] = struct{}{}
			s.vertices[i].D++
		}
	}
	return s
}

// ApplyWorkload folds a query-workload sample into the statistics. Each
// workload edge contributes one query occurrence to its source vertex;
// weights are Laplace-smoothed over the data-sample vertex set:
//
//	w̃(n) = (count(n) + 1) / (|W| + |V|)
//
// so vertices absent from the workload sample keep weight 1/(|W|+|V|) > 0.
// Workload sources that never occur in the data sample are ignored here;
// at query time such vertices route to the outlier sketch anyway.
func (s *Stats) ApplyWorkload(workload []stream.Edge) {
	counts := make(map[uint64]int64, len(s.vertices))
	var total int64
	for _, q := range workload {
		if _, ok := s.index[q.Src]; ok {
			counts[q.Src]++
		}
		total++
	}
	denom := float64(total) + float64(len(s.vertices))
	if denom == 0 {
		return
	}
	for i := range s.vertices {
		s.vertices[i].W = (float64(counts[s.vertices[i].ID]) + 1) / denom
	}
	s.hasWork = true
}

// HasWorkload reports whether ApplyWorkload has been called.
func (s *Stats) HasWorkload() bool { return s.hasWork }

// Len returns the number of distinct source vertices in the sample.
func (s *Stats) Len() int { return len(s.vertices) }

// TotalF returns Σ f̃v over all vertices.
func (s *Stats) TotalF() float64 { return s.totalF }

// Get returns the statistics of one vertex.
func (s *Stats) Get(id uint64) (VertexStat, bool) {
	i, ok := s.index[id]
	if !ok {
		return VertexStat{}, false
	}
	return s.vertices[i], true
}

// SortOrder selects the partitioning scenario's vertex ordering.
type SortOrder int

const (
	// ByAvgFreq sorts by f̃v(m)/d̃(m) — scenario A (data sample only, §4.1).
	ByAvgFreq SortOrder = iota
	// ByFreqPerWeight sorts by f̃v(n)/w̃(n) — scenario B (data + workload
	// samples, §4.2).
	ByFreqPerWeight
)

// String implements fmt.Stringer.
func (o SortOrder) String() string {
	switch o {
	case ByAvgFreq:
		return "avg-frequency (data sample)"
	case ByFreqPerWeight:
		return "frequency-per-weight (data+workload)"
	default:
		return fmt.Sprintf("SortOrder(%d)", int(o))
	}
}

// Sorted returns the vertices ordered for the given scenario. The result is
// a fresh slice; Stats is unchanged.
func (s *Stats) Sorted(order SortOrder) []VertexStat {
	out := make([]VertexStat, len(s.vertices))
	copy(out, s.vertices)
	var key func(VertexStat) float64
	switch order {
	case ByAvgFreq:
		key = func(v VertexStat) float64 { return v.F / v.D }
	case ByFreqPerWeight:
		key = func(v VertexStat) float64 { return v.F / v.W }
	default:
		panic(fmt.Sprintf("vstats: unknown sort order %d", order))
	}
	sort.Slice(out, func(i, j int) bool {
		ki, kj := key(out[i]), key(out[j])
		if ki != kj {
			return ki < kj
		}
		return out[i].ID < out[j].ID // deterministic tiebreak
	})
	return out
}
