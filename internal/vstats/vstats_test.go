package vstats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"github.com/graphstream/gsketch/internal/stream"
)

func sample() []stream.Edge {
	return []stream.Edge{
		{Src: 1, Dst: 10, Weight: 5},
		{Src: 1, Dst: 11, Weight: 5},
		{Src: 1, Dst: 10, Weight: 5}, // duplicate edge: degree counted once
		{Src: 2, Dst: 10},            // zero weight counts as 1
		{Src: 3, Dst: 20, Weight: 2},
		{Src: 3, Dst: 21, Weight: 2},
		{Src: 3, Dst: 22, Weight: 2},
	}
}

func TestFromSample(t *testing.T) {
	s := FromSample(sample())
	if s.Len() != 3 {
		t.Fatalf("len = %d, want 3", s.Len())
	}
	v1, ok := s.Get(1)
	if !ok || v1.F != 15 || v1.D != 2 {
		t.Errorf("vertex 1 = %+v, want F=15 D=2", v1)
	}
	v2, _ := s.Get(2)
	if v2.F != 1 || v2.D != 1 {
		t.Errorf("vertex 2 = %+v, want F=1 D=1", v2)
	}
	v3, _ := s.Get(3)
	if v3.F != 6 || v3.D != 3 {
		t.Errorf("vertex 3 = %+v, want F=6 D=3", v3)
	}
	if s.TotalF() != 22 {
		t.Errorf("totalF = %v, want 22", s.TotalF())
	}
	if _, ok := s.Get(99); ok {
		t.Error("unknown vertex found")
	}
	if v1.AvgEdgeFreq() != 7.5 {
		t.Errorf("avg edge freq = %v, want 7.5", v1.AvgEdgeFreq())
	}
	if s.HasWorkload() {
		t.Error("workload flagged before ApplyWorkload")
	}
}

func TestSortedByAvgFreq(t *testing.T) {
	s := FromSample(sample())
	sorted := s.Sorted(ByAvgFreq)
	// Keys: v1 = 7.5, v2 = 1, v3 = 2 → order 2, 3, 1.
	want := []uint64{2, 3, 1}
	for i, v := range sorted {
		if v.ID != want[i] {
			t.Fatalf("position %d: id %d, want %d", i, v.ID, want[i])
		}
	}
}

func TestApplyWorkloadLaplace(t *testing.T) {
	s := FromSample(sample())
	// Workload hits vertex 1 twice, vertex 3 once, vertex 7 (not in data
	// sample: ignored) once.
	workload := []stream.Edge{
		{Src: 1, Dst: 10}, {Src: 1, Dst: 11}, {Src: 3, Dst: 20}, {Src: 7, Dst: 1},
	}
	s.ApplyWorkload(workload)
	if !s.HasWorkload() {
		t.Error("workload not flagged")
	}
	denom := 4.0 + 3.0 // |W| + |V|
	v1, _ := s.Get(1)
	v2, _ := s.Get(2)
	v3, _ := s.Get(3)
	if math.Abs(v1.W-3/denom) > 1e-12 {
		t.Errorf("w(1) = %v, want %v", v1.W, 3/denom)
	}
	if math.Abs(v2.W-1/denom) > 1e-12 {
		t.Errorf("w(2) = %v, want %v (Laplace smoothing)", v2.W, 1/denom)
	}
	if math.Abs(v3.W-2/denom) > 1e-12 {
		t.Errorf("w(3) = %v, want %v", v3.W, 2/denom)
	}
	if v2.W <= 0 {
		t.Error("smoothed weight must stay positive")
	}
}

func TestSortedByFreqPerWeight(t *testing.T) {
	s := FromSample(sample())
	s.ApplyWorkload([]stream.Edge{{Src: 2, Dst: 1}, {Src: 2, Dst: 1}, {Src: 2, Dst: 1}})
	// Keys f̃v/w̃: heavily queried vertices sort first for equal f.
	sorted := s.Sorted(ByFreqPerWeight)
	// v2: F=1, W=(3+1)/6 → key 1.5; v3: F=6, W=1/6 → 36; v1: F=15, W=1/6 → 90.
	want := []uint64{2, 3, 1}
	for i, v := range sorted {
		if v.ID != want[i] {
			t.Fatalf("position %d: id %d, want %d", i, v.ID, want[i])
		}
	}
}

func TestSortedDeterministicTies(t *testing.T) {
	// All vertices identical stats → sort must fall back to ID order.
	var edges []stream.Edge
	for i := 10; i > 0; i-- {
		edges = append(edges, stream.Edge{Src: uint64(i), Dst: 100, Weight: 1})
	}
	s := FromSample(edges)
	sorted := s.Sorted(ByAvgFreq)
	if !sort.SliceIsSorted(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID }) {
		t.Error("tied keys not ordered by ID")
	}
}

func TestStatsInvariantsProperty(t *testing.T) {
	// For any sample: Σ per-vertex F equals total weight, D ≥ 1, F ≥ D
	// (weights ≥ 1), and Sorted is a permutation.
	f := func(srcs, dsts []uint8) bool {
		n := len(srcs)
		if len(dsts) < n {
			n = len(dsts)
		}
		if n == 0 {
			return true
		}
		edges := make([]stream.Edge, n)
		for i := 0; i < n; i++ {
			edges[i] = stream.Edge{Src: uint64(srcs[i] % 16), Dst: uint64(dsts[i] % 16), Weight: 1}
		}
		s := FromSample(edges)
		var sumF float64
		ids := make(map[uint64]bool)
		for _, v := range s.Sorted(ByAvgFreq) {
			sumF += v.F
			if v.D < 1 || v.F < v.D {
				return false
			}
			if ids[v.ID] {
				return false // duplicate in sort output
			}
			ids[v.ID] = true
		}
		return sumF == float64(n) && len(ids) == s.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestEmptyWorkloadNoop(t *testing.T) {
	s := FromSample(sample())
	s.ApplyWorkload(nil)
	v1, _ := s.Get(1)
	// Laplace smoothing over zero queries: every vertex gets 1/|V|.
	if math.Abs(v1.W-1.0/3.0) > 1e-12 {
		t.Errorf("w after empty workload = %v, want 1/3", v1.W)
	}
}
