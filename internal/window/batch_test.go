package window

import (
	"testing"

	"github.com/graphstream/gsketch/internal/core"
	"github.com/graphstream/gsketch/internal/hashutil"
	"github.com/graphstream/gsketch/internal/stream"
)

func batchWindowConfig() StoreConfig {
	return StoreConfig{
		Span:       100,
		SampleSize: 500,
		Sketch:     core.Config{TotalWidth: 1024, Seed: 21},
		Seed:       22,
	}
}

func timedStream(n int, seed uint64) []stream.Edge {
	rng := hashutil.NewRNG(seed)
	edges := make([]stream.Edge, n)
	for i := range edges {
		edges[i] = stream.Edge{
			Src:    rng.Uint64() % 500,
			Dst:    rng.Uint64() % 2000,
			Weight: 1,
			Time:   int64(i) / 20, // ~5 windows over n=10000 at span 100
		}
	}
	return edges
}

// TestObserveBatchMatchesObserve proves the batched window path produces
// the same windows, arrivals, reservoir state and estimates as per-edge
// Observe.
func TestObserveBatchMatchesObserve(t *testing.T) {
	edges := timedStream(10_000, 31)

	seq, err := NewStore(batchWindowConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range edges {
		if err := seq.Observe(e); err != nil {
			t.Fatal(err)
		}
	}

	bat, err := NewStore(batchWindowConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Deliver in uneven slices that straddle window boundaries.
	for lo := 0; lo < len(edges); {
		hi := lo + 777
		if hi > len(edges) {
			hi = len(edges)
		}
		if err := bat.ObserveBatch(edges[lo:hi]); err != nil {
			t.Fatal(err)
		}
		lo = hi
	}

	sw, bw := seq.Windows(), bat.Windows()
	if len(sw) != len(bw) {
		t.Fatalf("window count %d vs %d", len(sw), len(bw))
	}
	for i := range sw {
		if sw[i].Index != bw[i].Index || sw[i].Arrivals != bw[i].Arrivals || sw[i].Partitioned != bw[i].Partitioned {
			t.Fatalf("window %d: {%d %d %v} vs {%d %d %v}", i,
				sw[i].Index, sw[i].Arrivals, sw[i].Partitioned,
				bw[i].Index, bw[i].Arrivals, bw[i].Partitioned)
		}
	}
	for _, e := range edges[:2000] {
		s := seq.EstimateEdgeAll(e.Src, e.Dst)
		b := bat.EstimateEdgeAll(e.Src, e.Dst)
		if s != b {
			t.Fatalf("estimate (%d,%d): %v vs %v", e.Src, e.Dst, s, b)
		}
	}
}

func TestObserveBatchRejectsOutOfOrder(t *testing.T) {
	s, err := NewStore(batchWindowConfig())
	if err != nil {
		t.Fatal(err)
	}
	good := []stream.Edge{{Src: 1, Dst: 2, Time: 500}}
	if err := s.ObserveBatch(good); err != nil {
		t.Fatal(err)
	}
	stale := []stream.Edge{{Src: 1, Dst: 2, Time: 100}}
	if err := s.ObserveBatch(stale); err == nil {
		t.Fatal("stale batch accepted")
	}
	negative := []stream.Edge{{Src: 1, Dst: 2, Time: -1}}
	if err := s.ObserveBatch(negative); err == nil {
		t.Fatal("negative timestamp accepted")
	}
}

func TestObserveBatchEmpty(t *testing.T) {
	s, err := NewStore(batchWindowConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ObserveBatch(nil); err != nil {
		t.Fatal(err)
	}
	if len(s.Windows()) != 0 {
		t.Fatal("empty batch opened a window")
	}
}
