package window

import (
	"math"
	"testing"

	"github.com/graphstream/gsketch/internal/core"
	"github.com/graphstream/gsketch/internal/sketch"
	"github.com/graphstream/gsketch/internal/stream"
)

// exactWindowConfig backs every window with the Exact synopsis so
// fractional-overlap arithmetic can be asserted precisely.
func exactWindowConfig(span int64) StoreConfig {
	return StoreConfig{
		Span:       span,
		SampleSize: 100,
		Sketch: core.Config{
			TotalWidth: 256,
			Seed:       5,
			Factory: func(w, d int, seed uint64) (sketch.Synopsis, error) {
				return sketch.NewExact(), nil
			},
		},
		Seed: 6,
	}
}

// fractionalStore holds edge (1,2) exactly 10 times in window 0 ([0,99])
// and 40 times in window 1 ([100,199]).
func fractionalStore(t *testing.T) *Store {
	t.Helper()
	s, err := NewStore(exactWindowConfig(100))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		mustObserve(t, s, stream.Edge{Src: 1, Dst: 2, Weight: 1, Time: int64(i * 10)})
	}
	for i := 0; i < 40; i++ {
		mustObserve(t, s, stream.Edge{Src: 1, Dst: 2, Weight: 1, Time: 100 + int64(i%100)})
	}
	return s
}

// TestEstimateEdgeFractionalOverlap pins the §5 extrapolation arithmetic:
// a partially overlapped window contributes overlap/span of its count.
func TestEstimateEdgeFractionalOverlap(t *testing.T) {
	s := fractionalStore(t)
	cases := []struct {
		name   string
		t1, t2 int64
		want   float64
	}{
		{"exact-window-0", 0, 99, 10},
		{"exact-window-1", 100, 199, 40},
		{"both-whole", 0, 199, 50},
		{"half-of-0", 0, 49, 5},                         // 0.5 × 10
		{"quarter-of-1", 100, 124, 10},                  // 0.25 × 40
		{"straddle", 50, 149, 25},                       // 0.5 × 10 + 0.5 × 40
		{"one-tick", 100, 100, 0.4},                     // 0.01 × 40
		{"t1-before-range", -500, 49, 5},                // clamps to window 0's start
		{"t2-after-range", 150, 10_000, 20},             // 0.5 × 40, nothing stored past 199
		{"whole-range-oversized", -1000, 1_000_000, 50}, // full overlap both windows
		{"entirely-before", -100, -1, 0},
		{"entirely-after", 200, 400, 0},
		{"inverted", 150, 50, 0},
	}
	for _, c := range cases {
		if got := s.EstimateEdge(1, 2, c.t1, c.t2); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("%s: EstimateEdge(1,2,%d,%d) = %v, want %v", c.name, c.t1, c.t2, got, c.want)
		}
		batch := s.EstimateBatch([]core.EdgeQuery{{Src: 1, Dst: 2}}, c.t1, c.t2)
		if math.Abs(batch[0]-c.want) > 1e-9 {
			t.Errorf("%s: EstimateBatch(1,2,%d,%d) = %v, want %v", c.name, c.t1, c.t2, batch[0], c.want)
		}
	}
}

// TestEstimateBatchMatchesEstimateEdge proves the per-window batch fan-out
// returns exactly the per-query values on realistic (CountMin, partitioned)
// windows.
func TestEstimateBatchMatchesEstimateEdge(t *testing.T) {
	edges := timedStream(10_000, 61)
	s, err := NewStore(batchWindowConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ObserveBatch(edges); err != nil {
		t.Fatal(err)
	}

	qs := make([]core.EdgeQuery, 0, 3000)
	for _, e := range edges[:1500] {
		qs = append(qs, core.EdgeQuery{Src: e.Src, Dst: e.Dst})
		qs = append(qs, core.EdgeQuery{Src: e.Src + 10_000, Dst: e.Dst}) // absent
	}
	ranges := [][2]int64{{0, 499}, {120, 380}, {-50, 10_000}, {250, 250}, {400, 100}}
	for _, r := range ranges {
		got := s.EstimateBatch(qs, r[0], r[1])
		for i, q := range qs {
			want := s.EstimateEdge(q.Src, q.Dst, r[0], r[1])
			if got[i] != want {
				t.Fatalf("range [%d,%d] query %d (%d,%d): batch %v, sequential %v",
					r[0], r[1], i, q.Src, q.Dst, got[i], want)
			}
		}
	}
	all := s.EstimateBatchAll(qs)
	for i, q := range qs {
		if want := s.EstimateEdgeAll(q.Src, q.Dst); all[i] != want {
			t.Fatalf("all-range query %d: batch %v, sequential %v", i, all[i], want)
		}
	}
}

func TestEstimateBatchEmptyStore(t *testing.T) {
	s, err := NewStore(batchWindowConfig())
	if err != nil {
		t.Fatal(err)
	}
	qs := []core.EdgeQuery{{Src: 1, Dst: 2}}
	if got := s.EstimateBatchAll(qs); len(got) != 1 || got[0] != 0 {
		t.Fatalf("empty store EstimateBatchAll = %v", got)
	}
	if got := s.EstimateBatch(nil, 0, 100); len(got) != 0 {
		t.Fatalf("nil batch returned %d values", len(got))
	}
}
