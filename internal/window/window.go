// Package window implements the §5 extension for dynamic queries over
// specific windows in time: the timeline is divided into fixed-span
// intervals, each summarized by its own partitioned sketch. The
// partitioning of window k is built from a reservoir sample collected
// during window k-1, exactly as the paper prescribes ("The partitioning in
// any particular window is performed by using a sample, which is
// constructed by reservoir sampling from the previous window in time").
// Interval queries extrapolate from the windows overlapping the requested
// time range.
package window

import (
	"errors"
	"fmt"

	"github.com/graphstream/gsketch/internal/core"
	"github.com/graphstream/gsketch/internal/hashutil"
	"github.com/graphstream/gsketch/internal/stream"
)

// ErrTimeOrder reports an edge arriving with a timestamp earlier than an
// already-sealed window; the store requires nondecreasing window indices.
var ErrTimeOrder = errors.New("window: edge timestamp precedes the current window")

// StoreConfig parameterizes a windowed sketch store.
type StoreConfig struct {
	// Span is the window length in stream time units; windows are
	// [k·Span, (k+1)·Span).
	Span int64
	// SampleSize is the per-window reservoir capacity feeding the next
	// window's partitioning.
	SampleSize int
	// Sketch is the per-window memory configuration. Each window gets its
	// own budget (the paper stores "the sketch statistics separately for
	// each window").
	Sketch core.Config
	// Seed decorrelates per-window reservoirs and hash families.
	Seed uint64
}

// Validate checks the configuration.
func (c StoreConfig) Validate() error {
	if c.Span <= 0 {
		return fmt.Errorf("window: span must be positive (got %d)", c.Span)
	}
	if c.SampleSize <= 0 {
		return fmt.Errorf("window: sample size must be positive (got %d)", c.SampleSize)
	}
	return c.Sketch.Validate()
}

// Window is one sealed or active time window.
type Window struct {
	// Index is the window number k; the window covers
	// [k·Span, (k+1)·Span).
	Index int64
	// Estimator summarizes the window's edges. Window 0 (no prior sample)
	// falls back to a GlobalSketch; later windows carry partitioned
	// gSketches built from the previous window's reservoir.
	Estimator core.Estimator
	// Partitioned records whether Estimator is a gSketch.
	Partitioned bool
	// Arrivals counts the edges folded into this window.
	Arrivals int64
}

// Store is the windowed sketch store. Not safe for concurrent use.
type Store struct {
	cfg      StoreConfig
	windows  []Window
	sampler  *stream.Reservoir
	rng      *hashutil.RNG
	started  bool
	curIndex int64
}

// NewStore builds an empty store.
func NewStore(cfg StoreConfig) (*Store, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Store{
		cfg: cfg,
		rng: hashutil.NewRNG(cfg.Seed ^ 0x5709e),
	}, nil
}

// Observe folds one edge arrival. Edges must arrive with nondecreasing
// window indices (stream order); an edge for an already-sealed window
// returns ErrTimeOrder.
func (s *Store) Observe(e stream.Edge) error {
	idx := e.Time / s.cfg.Span
	if e.Time < 0 {
		return fmt.Errorf("window: negative timestamp %d", e.Time)
	}
	if !s.started {
		if err := s.open(idx); err != nil {
			return err
		}
		s.started = true
	}
	for idx > s.curIndex {
		if err := s.open(s.curIndex + 1); err != nil {
			return err
		}
	}
	if idx < s.curIndex {
		return fmt.Errorf("%w: edge at window %d, current %d", ErrTimeOrder, idx, s.curIndex)
	}
	w := &s.windows[len(s.windows)-1]
	w.Estimator.Update(e)
	w.Arrivals++
	s.sampler.Observe(e)
	return nil
}

// ObserveBatch folds a slice of edge arrivals, handing each contiguous run
// of same-window edges to the window estimator in one UpdateBatch call so
// the batched ingest path extends through window segmentation. Edges must
// arrive in nondecreasing window order, as with Observe; on error the edges
// preceding the offending one have been applied.
func (s *Store) ObserveBatch(edges []stream.Edge) error {
	for start := 0; start < len(edges); {
		e := edges[start]
		if e.Time < 0 {
			return fmt.Errorf("window: negative timestamp %d", e.Time)
		}
		idx := e.Time / s.cfg.Span
		if !s.started {
			if err := s.open(idx); err != nil {
				return err
			}
			s.started = true
		}
		for idx > s.curIndex {
			if err := s.open(s.curIndex + 1); err != nil {
				return err
			}
		}
		if idx < s.curIndex {
			return fmt.Errorf("%w: edge at window %d, current %d", ErrTimeOrder, idx, s.curIndex)
		}
		// Extend the run while edges stay in the current window.
		end := start + 1
		for end < len(edges) && edges[end].Time >= 0 && edges[end].Time/s.cfg.Span == idx {
			end++
		}
		run := edges[start:end]
		w := &s.windows[len(s.windows)-1]
		w.Estimator.UpdateBatch(run)
		w.Arrivals += int64(len(run))
		for _, e := range run {
			s.sampler.Observe(e)
		}
		start = end
	}
	return nil
}

// open seals the current window (if any) and starts window idx, building
// its estimator from the previous window's reservoir sample.
func (s *Store) open(idx int64) error {
	cfg := s.cfg.Sketch
	cfg.Seed = s.rng.Uint64()

	var est core.Estimator
	partitioned := false
	if s.sampler != nil && len(s.sampler.Sample()) > 0 {
		g, err := core.BuildGSketch(cfg, s.sampler.Sample(), nil)
		if err != nil {
			return fmt.Errorf("window %d: %w", idx, err)
		}
		est = g
		partitioned = true
	} else {
		g, err := core.BuildGlobalSketch(cfg)
		if err != nil {
			return fmt.Errorf("window %d: %w", idx, err)
		}
		est = g
	}
	s.windows = append(s.windows, Window{Index: idx, Estimator: est, Partitioned: partitioned})
	s.curIndex = idx
	s.sampler = stream.NewReservoir(s.cfg.SampleSize, s.rng.Uint64())
	return nil
}

// Windows returns the store's windows in time order. The slice aliases
// internal state; callers must not mutate it.
func (s *Store) Windows() []Window { return s.windows }

// Span returns the configured window span.
func (s *Store) Span() int64 { return s.cfg.Span }

// EstimateEdge estimates the frequency of (src, dst) over the time range
// [t1, t2] inclusive, extrapolating fractionally from partially overlapped
// windows ("resolved approximately by extrapolating from the sketch time
// windows which overlap most closely", §5).
func (s *Store) EstimateEdge(src, dst uint64, t1, t2 int64) float64 {
	if t2 < t1 {
		return 0
	}
	total := 0.0
	for i := range s.windows {
		w := &s.windows[i]
		lo := w.Index * s.cfg.Span
		hi := lo + s.cfg.Span - 1
		oLo, oHi := maxI64(lo, t1), minI64(hi, t2)
		if oLo > oHi {
			continue
		}
		frac := float64(oHi-oLo+1) / float64(s.cfg.Span)
		total += frac * float64(w.Estimator.EstimateEdge(src, dst))
	}
	return total
}

// EstimateEdgeAll estimates the edge's frequency over the whole stored
// timeline.
func (s *Store) EstimateEdgeAll(src, dst uint64) float64 {
	if len(s.windows) == 0 {
		return 0
	}
	first := s.windows[0].Index * s.cfg.Span
	last := s.windows[len(s.windows)-1].Index*s.cfg.Span + s.cfg.Span - 1
	return s.EstimateEdge(src, dst, first, last)
}

// EstimateBatch answers a batch of edge queries over the time range
// [t1, t2] inclusive, in input order. Each overlapping window answers the
// whole batch with one routed EstimateBatch pass, and its fractional
// overlap weight is applied to every answer — so a k-query range estimate
// touches each window's counters once per batch instead of once per query.
// Values are identical to per-query EstimateEdge.
func (s *Store) EstimateBatch(qs []core.EdgeQuery, t1, t2 int64) []float64 {
	out := make([]float64, len(qs))
	if t2 < t1 || len(qs) == 0 {
		return out
	}
	for i := range s.windows {
		w := &s.windows[i]
		lo := w.Index * s.cfg.Span
		hi := lo + s.cfg.Span - 1
		oLo, oHi := maxI64(lo, t1), minI64(hi, t2)
		if oLo > oHi {
			continue
		}
		frac := float64(oHi-oLo+1) / float64(s.cfg.Span)
		res := w.Estimator.EstimateBatch(qs)
		for j := range res {
			out[j] += frac * float64(res[j].Estimate)
		}
	}
	return out
}

// EstimateBatchAll answers a batch of edge queries over the whole stored
// timeline.
func (s *Store) EstimateBatchAll(qs []core.EdgeQuery) []float64 {
	if len(s.windows) == 0 {
		return make([]float64, len(qs))
	}
	first := s.windows[0].Index * s.cfg.Span
	last := s.windows[len(s.windows)-1].Index*s.cfg.Span + s.cfg.Span - 1
	return s.EstimateBatch(qs, first, last)
}

// MemoryBytes sums the counter footprint across windows.
func (s *Store) MemoryBytes() int {
	total := 0
	for i := range s.windows {
		total += s.windows[i].Estimator.MemoryBytes()
	}
	return total
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
