package window

import (
	"errors"
	"math"
	"testing"

	"github.com/graphstream/gsketch/internal/core"
	"github.com/graphstream/gsketch/internal/hashutil"
	"github.com/graphstream/gsketch/internal/stream"
)

func storeConfig() StoreConfig {
	return StoreConfig{
		Span:       100,
		SampleSize: 200,
		Sketch:     core.Config{TotalBytes: 32 << 10},
		Seed:       1,
	}
}

func TestStoreWindowRollover(t *testing.T) {
	s, err := NewStore(storeConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := hashutil.NewRNG(2)
	for ts := int64(0); ts < 350; ts++ {
		e := stream.Edge{Src: rng.Uint64() % 50, Dst: rng.Uint64() % 50, Weight: 1, Time: ts}
		if err := s.Observe(e); err != nil {
			t.Fatal(err)
		}
	}
	ws := s.Windows()
	if len(ws) != 4 {
		t.Fatalf("got %d windows, want 4 (timestamps 0..349, span 100)", len(ws))
	}
	// Window 0 has no prior sample → global; later windows partitioned.
	if ws[0].Partitioned {
		t.Error("window 0 should not be partitioned (no prior sample)")
	}
	for i := 1; i < len(ws); i++ {
		if !ws[i].Partitioned {
			t.Errorf("window %d not partitioned despite prior reservoir", i)
		}
	}
	var total int64
	for _, w := range ws {
		total += w.Arrivals
	}
	if total != 350 {
		t.Errorf("arrivals across windows = %d, want 350", total)
	}
	if s.MemoryBytes() <= 0 {
		t.Error("memory unreported")
	}
}

func TestStoreEstimates(t *testing.T) {
	s, _ := NewStore(storeConfig())
	// Edge (7,8) appears 10 times in window 0 and 20 times in window 1.
	for i := 0; i < 10; i++ {
		mustObserve(t, s, stream.Edge{Src: 7, Dst: 8, Weight: 1, Time: int64(i)})
	}
	for i := 0; i < 20; i++ {
		mustObserve(t, s, stream.Edge{Src: 7, Dst: 8, Weight: 1, Time: 100 + int64(i)})
	}
	// Whole-lifetime estimate ≥ 30 (CountMin overestimates).
	if got := s.EstimateEdgeAll(7, 8); got < 30 {
		t.Errorf("lifetime estimate = %v, want ≥ 30", got)
	}
	// Window-0-only estimate ≈ 10.
	if got := s.EstimateEdge(7, 8, 0, 99); got < 10 || got > 15 {
		t.Errorf("window-0 estimate = %v, want ≈ 10", got)
	}
	// Half of window 1 extrapolates to ~half of its count.
	got := s.EstimateEdge(7, 8, 100, 149)
	if math.Abs(got-10) > 3 {
		t.Errorf("half-window estimate = %v, want ≈ 10 (20 × 0.5)", got)
	}
	// Disjoint range: zero.
	if got := s.EstimateEdge(7, 8, 500, 600); got != 0 {
		t.Errorf("estimate outside stored windows = %v", got)
	}
	// Inverted range: zero.
	if got := s.EstimateEdge(7, 8, 50, 10); got != 0 {
		t.Errorf("inverted range = %v", got)
	}
}

func TestStoreTimeOrder(t *testing.T) {
	s, _ := NewStore(storeConfig())
	mustObserve(t, s, stream.Edge{Src: 1, Dst: 2, Time: 250})
	if err := s.Observe(stream.Edge{Src: 1, Dst: 2, Time: 50}); !errors.Is(err, ErrTimeOrder) {
		t.Errorf("stale edge error = %v, want ErrTimeOrder", err)
	}
	if err := s.Observe(stream.Edge{Src: 1, Dst: 2, Time: -5}); err == nil {
		t.Error("negative timestamp accepted")
	}
}

func TestStoreSkippedWindows(t *testing.T) {
	s, _ := NewStore(storeConfig())
	mustObserve(t, s, stream.Edge{Src: 1, Dst: 2, Time: 10})
	mustObserve(t, s, stream.Edge{Src: 1, Dst: 2, Time: 510}) // jumps 4 windows
	ws := s.Windows()
	if len(ws) != 6 {
		t.Fatalf("got %d windows, want 6 (0..5)", len(ws))
	}
	if ws[5].Arrivals != 1 {
		t.Errorf("window 5 arrivals = %d", ws[5].Arrivals)
	}
}

func TestStoreConfigValidation(t *testing.T) {
	bad := []StoreConfig{
		{Span: 0, SampleSize: 10, Sketch: core.Config{TotalBytes: 1 << 20}},
		{Span: 10, SampleSize: 0, Sketch: core.Config{TotalBytes: 1 << 20}},
		{Span: 10, SampleSize: 10, Sketch: core.Config{}},
	}
	for i, cfg := range bad {
		if _, err := NewStore(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestStoreAccuracyAgainstExact(t *testing.T) {
	// End to end: windowed estimates should track exact per-window counts
	// within CountMin overestimation.
	s, _ := NewStore(StoreConfig{
		Span:       1000,
		SampleSize: 500,
		Sketch:     core.Config{TotalBytes: 256 << 10},
		Seed:       3,
	})
	exact := stream.NewExactCounter()
	rng := hashutil.NewRNG(4)
	for ts := int64(0); ts < 5000; ts++ {
		e := stream.Edge{Src: rng.Uint64() % 100, Dst: rng.Uint64() % 100, Weight: 1, Time: ts}
		mustObserve(t, s, e)
		exact.Observe(e)
	}
	var over, n float64
	exact.RangeEdges(func(src, dst uint64, f int64) bool {
		est := s.EstimateEdgeAll(src, dst)
		if est < float64(f)-0.01 {
			t.Fatalf("windowed estimate %v below truth %d for (%d,%d)", est, f, src, dst)
		}
		over += est - float64(f)
		n++
		return true
	})
	if mean := over / n; mean > 5 {
		t.Errorf("mean overestimate %v too large for this budget", mean)
	}
}

func mustObserve(t *testing.T, s *Store, e stream.Edge) {
	t.Helper()
	if err := s.Observe(e); err != nil {
		t.Fatal(err)
	}
}
