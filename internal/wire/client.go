package wire

import (
	"bufio"
	"fmt"
	"net"
	"time"

	"github.com/graphstream/gsketch/internal/core"
	"github.com/graphstream/gsketch/internal/stream"
)

// RemoteError is a TypeError frame surfaced by the client: the server
// rejected the conversation and closed the connection.
type RemoteError struct {
	Code int
	Msg  string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("wire: server error %d: %s", e.Code, e.Msg)
}

// Client is a strictly request/reply wire-protocol client over one
// connection. It is not safe for concurrent use; open one Client per
// goroutine (the protocol itself multiplexes by connection, not by
// request).
type Client struct {
	conn net.Conn
	bw   *bufio.Writer
	dec  *Decoder
	buf  []byte
}

// Dial connects a Client to a wire-protocol listener.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection.
func NewClient(conn net.Conn) *Client {
	return &Client{
		conn: conn,
		bw:   bufio.NewWriterSize(conn, 64<<10),
		dec:  NewDecoder(bufio.NewReaderSize(conn, 64<<10)),
	}
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// roundTrip writes the frame in c.buf and reads one reply frame, turning
// TypeError replies into *RemoteError.
func (c *Client) roundTrip() (Frame, error) {
	if _, err := c.bw.Write(c.buf); err != nil {
		return Frame{}, err
	}
	if err := c.bw.Flush(); err != nil {
		return Frame{}, err
	}
	f, err := c.dec.Next()
	if err != nil {
		return Frame{}, err
	}
	if f.Type == TypeError {
		code, msg, derr := DecodeError(f.Payload)
		if derr != nil {
			return Frame{}, derr
		}
		return Frame{}, &RemoteError{Code: int(code), Msg: msg}
	}
	return f, nil
}

// Ingest offers one edge batch as a single frame and returns the server's
// ack. rejected > 0 means the pipeline shed that suffix; the caller may
// retry edges[accepted:] after a backoff.
func (c *Client) Ingest(edges []stream.Edge) (accepted, rejected int, err error) {
	c.buf = AppendIngest(c.buf[:0], edges)
	f, err := c.roundTrip()
	if err != nil {
		return 0, 0, err
	}
	if f.Type != TypeAck {
		return 0, 0, fmt.Errorf("wire: ingest reply type 0x%02x, want ack", f.Type)
	}
	return DecodeAck(f.Payload)
}

// IngestAll streams edges in chunks, retrying every shed suffix until the
// server has accepted the whole slice. It returns the number of 429-style
// shed/retry rounds it took.
func (c *Client) IngestAll(edges []stream.Edge, chunk int) (retries int64, err error) {
	if chunk <= 0 {
		chunk = 8192
	}
	for lo := 0; lo < len(edges); {
		hi := lo + chunk
		if hi > len(edges) {
			hi = len(edges)
		}
		accepted, rejected, err := c.Ingest(edges[lo:hi])
		if err != nil {
			return retries, err
		}
		lo += accepted
		if rejected > 0 {
			retries++
			time.Sleep(200 * time.Microsecond)
		}
	}
	return retries, nil
}

// Query answers a batch of edge queries, appending to dst.
func (c *Client) Query(dst []core.Result, qs []core.EdgeQuery) ([]core.Result, error) {
	c.buf = AppendQuery(c.buf[:0], qs)
	f, err := c.roundTrip()
	if err != nil {
		return dst, err
	}
	if f.Type != TypeResults {
		return dst, fmt.Errorf("wire: query reply type 0x%02x, want results", f.Type)
	}
	return DecodeResults(dst, f.Payload)
}

// Flush drains the server's ingest pipeline, establishing
// read-your-writes for everything this (and every other) connection has
// had accepted.
func (c *Client) Flush() error {
	c.buf = AppendFlush(c.buf[:0])
	f, err := c.roundTrip()
	if err != nil {
		return err
	}
	if f.Type != TypeFlushAck {
		return fmt.Errorf("wire: flush reply type 0x%02x, want flush ack", f.Type)
	}
	return nil
}

// Ping probes the server without mutating it, returning the server's live
// gauges and the round-trip time. It is the health check a cluster
// coordinator runs against its shards.
func (c *Client) Ping() (Pong, time.Duration, error) {
	c.buf = AppendPing(c.buf[:0])
	start := time.Now()
	f, err := c.roundTrip()
	rtt := time.Since(start)
	if err != nil {
		return Pong{}, rtt, err
	}
	if f.Type != TypePong {
		return Pong{}, rtt, fmt.Errorf("wire: ping reply type 0x%02x, want pong", f.Type)
	}
	p, err := DecodePong(f.Payload)
	return p, rtt, err
}

// SaveSnapshot asks the server to persist a snapshot to its own configured
// snapshot path, returning the byte count written. The sketch state never
// crosses the wire — the frame is the fan-out signal a coordinator sends
// to every shard.
func (c *Client) SaveSnapshot() (int64, error) {
	c.buf = AppendSnapSave(c.buf[:0])
	f, err := c.roundTrip()
	if err != nil {
		return 0, err
	}
	if f.Type != TypeSnapSaveAck {
		return 0, fmt.Errorf("wire: snapshot-save reply type 0x%02x, want ack", f.Type)
	}
	return DecodeSnapSaveAck(f.Payload)
}

// RestoreSnapshot asks the server to swap in the snapshot at its own
// configured snapshot path, returning the post-swap stream total and
// generation count.
func (c *Client) RestoreSnapshot() (streamTotal int64, generations int, err error) {
	c.buf = AppendSnapRestore(c.buf[:0])
	f, err := c.roundTrip()
	if err != nil {
		return 0, 0, err
	}
	if f.Type != TypeSnapRestoreAck {
		return 0, 0, fmt.Errorf("wire: snapshot-restore reply type 0x%02x, want ack", f.Type)
	}
	return DecodeSnapRestoreAck(f.Payload)
}

// SelectTenant binds the connection to the named tenant on a
// multi-tenant server: every later frame on this connection is scoped
// to it. An unknown tenant surfaces as *RemoteError with CodeNotFound.
func (c *Client) SelectTenant(name string) error {
	c.buf = AppendTenantSelect(c.buf[:0], name)
	f, err := c.roundTrip()
	if err != nil {
		return err
	}
	if f.Type != TypeTenantAck {
		return fmt.Errorf("wire: tenant-select reply type 0x%02x, want tenant ack", f.Type)
	}
	return nil
}

// SetDeadline bounds the next round trip(s); the zero time clears it. A
// coordinator uses it so a dead shard surfaces as a timeout instead of a
// hung gather.
func (c *Client) SetDeadline(t time.Time) error { return c.conn.SetDeadline(t) }
