package wire

import (
	"bufio"
	"errors"
	"net"
	"testing"

	"github.com/graphstream/gsketch/internal/core"
	"github.com/graphstream/gsketch/internal/stream"
)

// TestClientConversation runs a Client against a scripted peer over
// net.Pipe: ingest with a shed suffix and retry, flush, query, then a
// server error.
func TestClientConversation(t *testing.T) {
	cl, sv := net.Pipe()
	defer cl.Close()
	c := NewClient(cl)

	edges := []stream.Edge{{Src: 1, Dst: 2, Weight: 3, Time: 4}, {Src: 5, Dst: 6, Weight: 7, Time: 8}}
	qs := []core.EdgeQuery{{Src: 1, Dst: 2}}
	want := []core.Result{{Estimate: 3, StreamTotal: 10, ErrorBound: 0.5, Confidence: 0.9, Partition: 1, Outlier: true}}

	srvErr := make(chan error, 1)
	go func() {
		defer sv.Close()
		defer close(srvErr)
		dec := NewDecoder(bufio.NewReader(sv))
		var out []byte
		reply := func(f func([]byte) []byte) bool {
			out = f(out[:0])
			_, err := sv.Write(out)
			if err != nil {
				srvErr <- err
				return false
			}
			return true
		}
		// Ingest frame 1: accept one edge, shed the other.
		if _, err := dec.Next(); err != nil {
			srvErr <- err
			return
		}
		if !reply(func(b []byte) []byte { return AppendAck(b, 1, 1) }) {
			return
		}
		// Ingest frame 2 (the retried suffix): accept it.
		f, err := dec.Next()
		if err != nil {
			srvErr <- err
			return
		}
		got, err := DecodeEdges(nil, f.Payload)
		if err != nil || len(got) != 1 || got[0] != edges[1] {
			srvErr <- errors.New("retried suffix is not edges[1:]")
			return
		}
		if !reply(func(b []byte) []byte { return AppendAck(b, 1, 0) }) {
			return
		}
		// Flush.
		if _, err := dec.Next(); err != nil {
			srvErr <- err
			return
		}
		if !reply(AppendFlushAck) {
			return
		}
		// Query.
		if _, err := dec.Next(); err != nil {
			srvErr <- err
			return
		}
		if !reply(func(b []byte) []byte { return AppendResults(b, want) }) {
			return
		}
		// Any further frame: answer a server error.
		if _, err := dec.Next(); err != nil {
			srvErr <- err
			return
		}
		reply(func(b []byte) []byte { return AppendError(b, CodeClosed, "going away") })
	}()

	retries, err := c.IngestAll(edges, len(edges))
	if err != nil || retries != 1 {
		t.Fatalf("IngestAll = (%d, %v), want (1, nil)", retries, err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	rs, err := c.Query(nil, qs)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || rs[0] != want[0] {
		t.Fatalf("Query = %+v, want %+v", rs, want)
	}

	var re *RemoteError
	if err := c.Flush(); !errors.As(err, &re) || re.Code != CodeClosed {
		t.Fatalf("error reply surfaced as %v, want *RemoteError{Code: %d}", err, CodeClosed)
	}
	if err := <-srvErr; err != nil {
		t.Fatalf("scripted peer: %v", err)
	}
}
