package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// TestClusterFrameRoundTrips covers the coordinator frames added for
// cluster mode: ping/pong and the snapshot save/restore fan-out pair.
func TestClusterFrameRoundTrips(t *testing.T) {
	var buf []byte
	buf = AppendPing(buf)
	buf = AppendPong(buf, Pong{StreamTotal: -7, QueueDepth: 3, Generations: 2})
	buf = AppendPong(buf, Pong{StreamTotal: 1 << 60, QueueDepth: 0, Generations: 1})
	buf = AppendSnapSave(buf)
	buf = AppendSnapSaveAck(buf, 123456789)
	buf = AppendSnapRestore(buf)
	buf = AppendSnapRestoreAck(buf, 42, 5)

	dec := NewDecoder(bytes.NewReader(buf))
	next := func(wantType byte, wantLen int) Frame {
		t.Helper()
		f, err := dec.Next()
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if f.Type != wantType {
			t.Fatalf("frame type 0x%02x, want 0x%02x", f.Type, wantType)
		}
		if len(f.Payload) != wantLen {
			t.Fatalf("payload %d bytes, want %d", len(f.Payload), wantLen)
		}
		return f
	}

	next(TypePing, 0)

	f := next(TypePong, PongSize)
	p, err := DecodePong(f.Payload)
	if err != nil {
		t.Fatalf("DecodePong: %v", err)
	}
	if p != (Pong{StreamTotal: -7, QueueDepth: 3, Generations: 2}) {
		t.Fatalf("pong round trip: %+v", p)
	}
	f = next(TypePong, PongSize)
	if p, _ = DecodePong(f.Payload); p.StreamTotal != 1<<60 {
		t.Fatalf("pong stream total: %d", p.StreamTotal)
	}

	next(TypeSnapSave, 0)

	f = next(TypeSnapSaveAck, SnapSaveAckSize)
	n, err := DecodeSnapSaveAck(f.Payload)
	if err != nil || n != 123456789 {
		t.Fatalf("snap-save ack: %d, %v", n, err)
	}

	next(TypeSnapRestore, 0)

	f = next(TypeSnapRestoreAck, SnapRestoreAckSize)
	total, gens, err := DecodeSnapRestoreAck(f.Payload)
	if err != nil || total != 42 || gens != 5 {
		t.Fatalf("snap-restore ack: %d/%d, %v", total, gens, err)
	}

	if _, err := dec.Next(); err != io.EOF {
		t.Fatalf("trailing frame: %v", err)
	}
}

// TestClusterFramePayloadValidation rejects truncated cluster-frame
// payloads with the typed payload error.
func TestClusterFramePayloadValidation(t *testing.T) {
	if _, err := DecodePong(make([]byte, PongSize-1)); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("short pong: %v", err)
	}
	if _, err := DecodeSnapSaveAck(make([]byte, SnapSaveAckSize+1)); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("long snap-save ack: %v", err)
	}
	if _, _, err := DecodeSnapRestoreAck(nil); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("empty snap-restore ack: %v", err)
	}
}

// TestDecoderAcceptsNewTypes makes sure the decoder's type range covers
// the highest registered frame and still rejects the next value.
func TestDecoderAcceptsNewTypes(t *testing.T) {
	frame := appendHeader(nil, TypeTenantAck, 0)
	if _, err := NewDecoder(bytes.NewReader(frame)).Next(); err != nil {
		t.Fatalf("TypeTenantAck rejected: %v", err)
	}
	frame = appendHeader(nil, TypeTenantAck+1, 0)
	if _, err := NewDecoder(bytes.NewReader(frame)).Next(); !errors.Is(err, ErrUnknownType) {
		t.Fatalf("unknown type accepted: %v", err)
	}
}

// TestTenantFrameRoundTrips covers the multi-tenant select/ack pair.
func TestTenantFrameRoundTrips(t *testing.T) {
	var buf []byte
	buf = AppendTenantSelect(buf, "acme-7")
	buf = AppendTenantAck(buf)

	dec := NewDecoder(bytes.NewReader(buf))
	f, err := dec.Next()
	if err != nil || f.Type != TypeTenantSelect {
		t.Fatalf("select frame: type 0x%02x, err %v", f.Type, err)
	}
	name, err := DecodeTenantSelect(f.Payload)
	if err != nil || name != "acme-7" {
		t.Fatalf("tenant name round trip: %q, %v", name, err)
	}
	if f, err = dec.Next(); err != nil || f.Type != TypeTenantAck || len(f.Payload) != 0 {
		t.Fatalf("ack frame: type 0x%02x len %d, err %v", f.Type, len(f.Payload), err)
	}

	if _, err := DecodeTenantSelect(nil); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("empty tenant name: %v", err)
	}
	long := make([]byte, MaxTenantNameLen+1)
	if _, err := DecodeTenantSelect(long); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("oversized tenant name: %v", err)
	}
}
