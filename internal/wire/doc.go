// Package wire defines the binary framing of the gSketch serving protocol:
// a versioned, length-prefixed frame format carrying batched fixed-width
// edge records on the write path and batched edge queries with their
// bound-carrying results on the read path. It is the high-throughput
// sibling of the HTTP/JSON API — the same operations, none of the JSON
// encode/decode cost — served over a raw TCP listener (gsketch-serve
// -wire-addr) and as Content-Type: application/x-gsketch-wire bodies on
// the existing HTTP endpoints.
//
// # Frame layout
//
// Every frame is an 8-byte header followed by a payload:
//
//	offset  size  field
//	0       1     version (currently 1)
//	1       1     frame type
//	2       2     reserved, must be zero
//	4       4     payload length, little-endian uint32
//
// Payloads are dense arrays of fixed-width little-endian records:
//
//	TypeIngest         N × 32 bytes: src u64, dst u64, weight i64, time i64
//	TypeQuery          N × 16 bytes: src u64, dst u64
//	TypeResults        N × 40 bytes: estimate i64, stream_total i64,
//	                   error_bound f64, confidence f64, partition i32,
//	                   flags u8 (bit 0 = outlier), 3 pad bytes
//	TypeAck            8 bytes: accepted u32, rejected u32
//	TypeError          2 bytes code u16, then a UTF-8 message
//	TypeFlush          empty (request: drain the ingest pipeline)
//	TypeFlushAck       empty (reply: the drain completed)
//	TypePing           empty (request: health probe, no state change)
//	TypePong           16 bytes: stream_total i64, queue_depth u32,
//	                   generations u32
//	TypeSnapSave       empty (request: persist a snapshot to the server's
//	                   own configured path)
//	TypeSnapSaveAck    8 bytes: bytes_written i64
//	TypeSnapRestore    empty (request: swap in the snapshot at the
//	                   server's own configured path)
//	TypeSnapRestoreAck 16 bytes: stream_total i64, generations u32,
//	                   4 pad bytes
//	TypeTenantSelect   1..64 bytes: tenant name, UTF-8 (request: bind the
//	                   connection to a tenant on a multi-tenant server)
//	TypeTenantAck      empty (reply: tenant selected)
//
// The conversation is strictly request/reply in frame order: TypeIngest is
// answered by TypeAck (rejected > 0 is the shed-load signal, the wire
// equivalent of HTTP 429 — retry the rejected suffix), TypeQuery by
// TypeResults (one record per query, in input order), TypeFlush by
// TypeFlushAck, TypePing by TypePong and the snapshot requests by their
// acks. Ping and the snapshot pair exist for the cluster coordinator
// (internal/cluster): Ping is the shard health probe, and the snapshot
// frames fan persistence out to every shard's local disk without sketch
// bytes crossing the wire. A server that cannot parse or serve a frame
// answers TypeError and closes the connection: framing errors are not
// recoverable mid-stream.
//
// On a multi-tenant server (gsketch-serve -tenants), a connection starts
// unbound: the client must send TypeTenantSelect (answered by
// TypeTenantAck) before any work frame; an unknown tenant name is
// answered with TypeError CodeNotFound, and work frames sent before a
// select with TypeError CodeUnsupported. Re-selecting mid-connection
// switches tenants. Tenant creation and deletion are not wire
// operations — they go through the HTTP admin API (PUT/DELETE/GET
// /t/{tenant}, GET /t), keeping the wire surface purely data-path.
//
// Decoding is defensive: unknown versions, unknown types, nonzero reserved
// bytes, payloads above the decoder bound and lengths that are not a
// multiple of the record width are all rejected with typed errors, never a
// panic, and a claimed length never allocates more than the decoder bound.
package wire
