package wire

import (
	"bytes"
	"io"
	"testing"

	"github.com/graphstream/gsketch/internal/core"
	"github.com/graphstream/gsketch/internal/stream"
)

// FuzzDecoder drives the frame decoder and every payload parser over
// arbitrary byte streams. The invariants: no panic, no unbounded
// allocation (the decoder runs with a small payload cap so the fuzzer can
// not make it allocate gigabytes), and every failure is a typed error —
// whatever decodes successfully must re-encode to a frame that decodes to
// the same records.
func FuzzDecoder(f *testing.F) {
	f.Add([]byte{})
	f.Add(header(Version, TypeFlush, 0))
	f.Add(AppendIngest(nil, []stream.Edge{{Src: 1, Dst: 2, Weight: 3, Time: 4}}))
	f.Add(AppendQuery(nil, []core.EdgeQuery{{Src: 5, Dst: 6}}))
	f.Add(AppendResults(nil, []core.Result{{Estimate: 7, Partition: core.NoPartition, Outlier: true, ErrorBound: 0.5, Confidence: 0.9, StreamTotal: 11}}))
	f.Add(AppendAck(nil, 3, 1))
	f.Add(AppendError(nil, CodeBadFrame, "bad"))
	f.Add(header(99, TypeIngest, 8))
	f.Add(header(Version, 0xee, 4))
	f.Add(header(Version, TypeIngest, 1<<31))

	f.Fuzz(func(t *testing.T, data []byte) {
		dec := NewDecoderSize(bytes.NewReader(data), 1<<16)
		for {
			fr, err := dec.Next()
			if err != nil {
				if err == io.EOF {
					return
				}
				// Any non-EOF failure ends the stream; just ensure the
				// error path returned rather than panicked.
				return
			}
			switch fr.Type {
			case TypeIngest:
				edges, err := DecodeEdges(nil, fr.Payload)
				if err == nil {
					reenc := AppendIngest(nil, edges)
					if !bytes.Equal(reenc[HeaderSize:], fr.Payload) {
						t.Fatalf("ingest payload did not round-trip")
					}
				}
			case TypeQuery:
				qs, err := DecodeQueries(nil, fr.Payload)
				if err == nil {
					reenc := AppendQuery(nil, qs)
					if !bytes.Equal(reenc[HeaderSize:], fr.Payload) {
						t.Fatalf("query payload did not round-trip")
					}
				}
			case TypeResults:
				// Results carry float bits and padding; decode must not
				// panic, and a clean decode re-encodes identically except
				// the pad bytes, which re-encode as zero.
				_, _ = DecodeResults(nil, fr.Payload)
			case TypeAck:
				_, _, _ = DecodeAck(fr.Payload)
			case TypeError:
				_, _, _ = DecodeError(fr.Payload)
			}
		}
	})
}
