package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"github.com/graphstream/gsketch/internal/core"
	"github.com/graphstream/gsketch/internal/stream"
)

// Version is the protocol version this package speaks.
const Version = 1

// ContentType is the MIME type of wire-framed HTTP bodies.
const ContentType = "application/x-gsketch-wire"

// Frame types.
const (
	TypeIngest   = 0x01 // edge batch → TypeAck
	TypeQuery    = 0x02 // query batch → TypeResults
	TypeAck      = 0x03 // ingest reply: accepted/rejected counts
	TypeResults  = 0x04 // query reply: one result record per query
	TypeError    = 0x05 // server fault; the connection closes after it
	TypeFlush    = 0x06 // drain request → TypeFlushAck
	TypeFlushAck = 0x07 // drain completed

	// Cluster-coordination frames (PR 7). Ping is a state-free health
	// probe; the snapshot pair asks a shard to persist/restore its own
	// configured snapshot path, so a coordinator can fan snapshots out
	// without streaming sketch bytes through itself.
	TypePing           = 0x08 // health probe → TypePong
	TypePong           = 0x09 // probe reply: live shard gauges
	TypeSnapSave       = 0x0A // persist a snapshot → TypeSnapSaveAck
	TypeSnapSaveAck    = 0x0B // snapshot persisted: byte count
	TypeSnapRestore    = 0x0C // swap in the snapshot → TypeSnapRestoreAck
	TypeSnapRestoreAck = 0x0D // snapshot restored: post-swap gauges

	// Multi-tenant extension (PR 9). A connection to a tenant-mode server
	// starts unbound; TenantSelect scopes every later frame on the
	// connection to the named tenant. Re-selecting switches tenants.
	TypeTenantSelect = 0x0E // bind the connection to a tenant → TypeTenantAck
	TypeTenantAck    = 0x0F // tenant selected
)

// Record widths and header size, in bytes.
const (
	HeaderSize         = 8
	EdgeSize           = 32
	QuerySize          = 16
	ResultSize         = 40
	AckSize            = 8
	PongSize           = 16
	SnapSaveAckSize    = 8
	SnapRestoreAckSize = 16
)

// MaxFrameBytes is the default payload bound: frames claiming more are
// rejected before any allocation. 16 MiB holds half a million edges.
const MaxFrameBytes = 16 << 20

// Error codes carried by TypeError frames.
const (
	CodeBadFrame    = 1 // unparseable or malformed frame
	CodeUnsupported = 2 // frame type the server does not serve
	CodeClosed      = 3 // server is shutting down
	CodeInternal    = 4 // serving failure (drain timeout, ...)
	CodeDegraded    = 5 // cluster shard(s) unreachable: partial answer refused
	CodeNotFound    = 6 // named tenant does not exist
)

// Typed decode errors, matched with errors.Is. Truncated frames surface as
// io.ErrUnexpectedEOF (a clean EOF between frames is io.EOF).
var (
	ErrBadVersion    = errors.New("wire: unsupported protocol version")
	ErrUnknownType   = errors.New("wire: unknown frame type")
	ErrBadHeader     = errors.New("wire: malformed frame header")
	ErrFrameTooLarge = errors.New("wire: frame exceeds size bound")
	ErrBadPayload    = errors.New("wire: malformed frame payload")
)

// Frame is one decoded frame. Payload aliases the decoder's internal
// buffer and is only valid until the next Next call.
type Frame struct {
	Type    byte
	Payload []byte
}

// Decoder reads frames from a byte stream. It is not safe for concurrent
// use. The zero value is unusable; construct with NewDecoder.
type Decoder struct {
	r   io.Reader
	max uint32
	hdr [HeaderSize]byte
	buf []byte
}

// NewDecoder wraps r with the default frame bound. Readers that are not
// already buffered should be wrapped in a bufio.Reader by the caller.
func NewDecoder(r io.Reader) *Decoder { return NewDecoderSize(r, MaxFrameBytes) }

// NewDecoderSize wraps r with an explicit payload bound.
func NewDecoderSize(r io.Reader, max int) *Decoder {
	if max < 0 || max > math.MaxUint32 {
		max = math.MaxUint32
	}
	return &Decoder{r: r, max: uint32(max)}
}

// Next reads one frame. The returned payload is valid until the next call.
// A clean end of stream between frames returns io.EOF; a stream cut inside
// a frame returns io.ErrUnexpectedEOF.
func (d *Decoder) Next() (Frame, error) {
	if _, err := io.ReadFull(d.r, d.hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return Frame{}, io.EOF
		}
		return Frame{}, io.ErrUnexpectedEOF
	}
	if d.hdr[0] != Version {
		return Frame{}, fmt.Errorf("%w: %d", ErrBadVersion, d.hdr[0])
	}
	typ := d.hdr[1]
	if typ < TypeIngest || typ > TypeTenantAck {
		return Frame{}, fmt.Errorf("%w: 0x%02x", ErrUnknownType, typ)
	}
	if d.hdr[2] != 0 || d.hdr[3] != 0 {
		return Frame{}, fmt.Errorf("%w: nonzero reserved bytes", ErrBadHeader)
	}
	n := binary.LittleEndian.Uint32(d.hdr[4:])
	if n > d.max {
		return Frame{}, fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, n, d.max)
	}
	if uint32(cap(d.buf)) < n {
		d.buf = make([]byte, n)
	}
	d.buf = d.buf[:n]
	if _, err := io.ReadFull(d.r, d.buf); err != nil {
		return Frame{}, io.ErrUnexpectedEOF
	}
	return Frame{Type: typ, Payload: d.buf}, nil
}

// appendHeader appends an 8-byte frame header for a payload of length n.
func appendHeader(dst []byte, typ byte, n int) []byte {
	var hdr [HeaderSize]byte
	hdr[0] = Version
	hdr[1] = typ
	binary.LittleEndian.PutUint32(hdr[4:], uint32(n))
	return append(dst, hdr[:]...)
}

// AppendIngest appends a TypeIngest frame carrying edges.
func AppendIngest(dst []byte, edges []stream.Edge) []byte {
	dst = appendHeader(dst, TypeIngest, len(edges)*EdgeSize)
	var rec [EdgeSize]byte
	for _, e := range edges {
		binary.LittleEndian.PutUint64(rec[0:], e.Src)
		binary.LittleEndian.PutUint64(rec[8:], e.Dst)
		binary.LittleEndian.PutUint64(rec[16:], uint64(e.Weight))
		binary.LittleEndian.PutUint64(rec[24:], uint64(e.Time))
		dst = append(dst, rec[:]...)
	}
	return dst
}

// AppendQuery appends a TypeQuery frame carrying qs.
func AppendQuery(dst []byte, qs []core.EdgeQuery) []byte {
	dst = appendHeader(dst, TypeQuery, len(qs)*QuerySize)
	var rec [QuerySize]byte
	for _, q := range qs {
		binary.LittleEndian.PutUint64(rec[0:], q.Src)
		binary.LittleEndian.PutUint64(rec[8:], q.Dst)
		dst = append(dst, rec[:]...)
	}
	return dst
}

// AppendResults appends a TypeResults frame carrying rs.
func AppendResults(dst []byte, rs []core.Result) []byte {
	dst = appendHeader(dst, TypeResults, len(rs)*ResultSize)
	var rec [ResultSize]byte
	for _, r := range rs {
		binary.LittleEndian.PutUint64(rec[0:], uint64(r.Estimate))
		binary.LittleEndian.PutUint64(rec[8:], uint64(r.StreamTotal))
		binary.LittleEndian.PutUint64(rec[16:], math.Float64bits(r.ErrorBound))
		binary.LittleEndian.PutUint64(rec[24:], math.Float64bits(r.Confidence))
		binary.LittleEndian.PutUint32(rec[32:], uint32(int32(r.Partition)))
		var flags byte
		if r.Outlier {
			flags |= 1
		}
		rec[36] = flags
		rec[37], rec[38], rec[39] = 0, 0, 0
		dst = append(dst, rec[:]...)
	}
	return dst
}

// AppendAck appends a TypeAck frame.
func AppendAck(dst []byte, accepted, rejected int) []byte {
	dst = appendHeader(dst, TypeAck, AckSize)
	var rec [AckSize]byte
	binary.LittleEndian.PutUint32(rec[0:], uint32(accepted))
	binary.LittleEndian.PutUint32(rec[4:], uint32(rejected))
	return append(dst, rec[:]...)
}

// AppendError appends a TypeError frame.
func AppendError(dst []byte, code uint16, msg string) []byte {
	dst = appendHeader(dst, TypeError, 2+len(msg))
	var c [2]byte
	binary.LittleEndian.PutUint16(c[:], code)
	dst = append(dst, c[:]...)
	return append(dst, msg...)
}

// AppendFlush appends a TypeFlush frame.
func AppendFlush(dst []byte) []byte { return appendHeader(dst, TypeFlush, 0) }

// AppendFlushAck appends a TypeFlushAck frame.
func AppendFlushAck(dst []byte) []byte { return appendHeader(dst, TypeFlushAck, 0) }

// DecodeEdges appends the edges of a TypeIngest payload to dst.
func DecodeEdges(dst []stream.Edge, payload []byte) ([]stream.Edge, error) {
	if len(payload)%EdgeSize != 0 {
		return dst, fmt.Errorf("%w: ingest payload %d bytes is not a multiple of %d", ErrBadPayload, len(payload), EdgeSize)
	}
	for off := 0; off < len(payload); off += EdgeSize {
		rec := payload[off : off+EdgeSize]
		dst = append(dst, stream.Edge{
			Src:    binary.LittleEndian.Uint64(rec[0:]),
			Dst:    binary.LittleEndian.Uint64(rec[8:]),
			Weight: int64(binary.LittleEndian.Uint64(rec[16:])),
			Time:   int64(binary.LittleEndian.Uint64(rec[24:])),
		})
	}
	return dst, nil
}

// DecodeQueries appends the queries of a TypeQuery payload to dst.
func DecodeQueries(dst []core.EdgeQuery, payload []byte) ([]core.EdgeQuery, error) {
	if len(payload)%QuerySize != 0 {
		return dst, fmt.Errorf("%w: query payload %d bytes is not a multiple of %d", ErrBadPayload, len(payload), QuerySize)
	}
	for off := 0; off < len(payload); off += QuerySize {
		rec := payload[off : off+QuerySize]
		dst = append(dst, core.EdgeQuery{
			Src: binary.LittleEndian.Uint64(rec[0:]),
			Dst: binary.LittleEndian.Uint64(rec[8:]),
		})
	}
	return dst, nil
}

// DecodeResults appends the results of a TypeResults payload to dst.
func DecodeResults(dst []core.Result, payload []byte) ([]core.Result, error) {
	if len(payload)%ResultSize != 0 {
		return dst, fmt.Errorf("%w: results payload %d bytes is not a multiple of %d", ErrBadPayload, len(payload), ResultSize)
	}
	for off := 0; off < len(payload); off += ResultSize {
		rec := payload[off : off+ResultSize]
		dst = append(dst, core.Result{
			Estimate:    int64(binary.LittleEndian.Uint64(rec[0:])),
			StreamTotal: int64(binary.LittleEndian.Uint64(rec[8:])),
			ErrorBound:  math.Float64frombits(binary.LittleEndian.Uint64(rec[16:])),
			Confidence:  math.Float64frombits(binary.LittleEndian.Uint64(rec[24:])),
			Partition:   int(int32(binary.LittleEndian.Uint32(rec[32:]))),
			Outlier:     rec[36]&1 != 0,
		})
	}
	return dst, nil
}

// DecodeAck unpacks a TypeAck payload.
func DecodeAck(payload []byte) (accepted, rejected int, err error) {
	if len(payload) != AckSize {
		return 0, 0, fmt.Errorf("%w: ack payload %d bytes, want %d", ErrBadPayload, len(payload), AckSize)
	}
	return int(binary.LittleEndian.Uint32(payload[0:])),
		int(binary.LittleEndian.Uint32(payload[4:])), nil
}

// DecodeError unpacks a TypeError payload.
func DecodeError(payload []byte) (code uint16, msg string, err error) {
	if len(payload) < 2 {
		return 0, "", fmt.Errorf("%w: error payload %d bytes, want >= 2", ErrBadPayload, len(payload))
	}
	return binary.LittleEndian.Uint16(payload), string(payload[2:]), nil
}

// Pong is the decoded payload of a TypePong health reply: the gauges a
// coordinator needs to judge a shard without mutating it.
type Pong struct {
	StreamTotal int64  // estimator stream volume
	QueueDepth  uint32 // pending ingest batches
	Generations uint32 // sketch generations serving
}

// AppendPing appends a TypePing frame.
func AppendPing(dst []byte) []byte { return appendHeader(dst, TypePing, 0) }

// AppendPong appends a TypePong frame.
func AppendPong(dst []byte, p Pong) []byte {
	dst = appendHeader(dst, TypePong, PongSize)
	var rec [PongSize]byte
	binary.LittleEndian.PutUint64(rec[0:], uint64(p.StreamTotal))
	binary.LittleEndian.PutUint32(rec[8:], p.QueueDepth)
	binary.LittleEndian.PutUint32(rec[12:], p.Generations)
	return append(dst, rec[:]...)
}

// DecodePong unpacks a TypePong payload.
func DecodePong(payload []byte) (Pong, error) {
	if len(payload) != PongSize {
		return Pong{}, fmt.Errorf("%w: pong payload %d bytes, want %d", ErrBadPayload, len(payload), PongSize)
	}
	return Pong{
		StreamTotal: int64(binary.LittleEndian.Uint64(payload[0:])),
		QueueDepth:  binary.LittleEndian.Uint32(payload[8:]),
		Generations: binary.LittleEndian.Uint32(payload[12:]),
	}, nil
}

// AppendSnapSave appends a TypeSnapSave frame.
func AppendSnapSave(dst []byte) []byte { return appendHeader(dst, TypeSnapSave, 0) }

// AppendSnapSaveAck appends a TypeSnapSaveAck frame.
func AppendSnapSaveAck(dst []byte, bytes int64) []byte {
	dst = appendHeader(dst, TypeSnapSaveAck, SnapSaveAckSize)
	var rec [SnapSaveAckSize]byte
	binary.LittleEndian.PutUint64(rec[0:], uint64(bytes))
	return append(dst, rec[:]...)
}

// DecodeSnapSaveAck unpacks a TypeSnapSaveAck payload.
func DecodeSnapSaveAck(payload []byte) (bytes int64, err error) {
	if len(payload) != SnapSaveAckSize {
		return 0, fmt.Errorf("%w: snapshot-save ack payload %d bytes, want %d", ErrBadPayload, len(payload), SnapSaveAckSize)
	}
	return int64(binary.LittleEndian.Uint64(payload)), nil
}

// AppendSnapRestore appends a TypeSnapRestore frame.
func AppendSnapRestore(dst []byte) []byte { return appendHeader(dst, TypeSnapRestore, 0) }

// AppendSnapRestoreAck appends a TypeSnapRestoreAck frame.
func AppendSnapRestoreAck(dst []byte, streamTotal int64, generations int) []byte {
	dst = appendHeader(dst, TypeSnapRestoreAck, SnapRestoreAckSize)
	var rec [SnapRestoreAckSize]byte
	binary.LittleEndian.PutUint64(rec[0:], uint64(streamTotal))
	binary.LittleEndian.PutUint32(rec[8:], uint32(generations))
	return append(dst, rec[:]...)
}

// DecodeSnapRestoreAck unpacks a TypeSnapRestoreAck payload.
func DecodeSnapRestoreAck(payload []byte) (streamTotal int64, generations int, err error) {
	if len(payload) != SnapRestoreAckSize {
		return 0, 0, fmt.Errorf("%w: snapshot-restore ack payload %d bytes, want %d", ErrBadPayload, len(payload), SnapRestoreAckSize)
	}
	return int64(binary.LittleEndian.Uint64(payload[0:])),
		int(binary.LittleEndian.Uint32(payload[8:])), nil
}

// MaxTenantNameLen bounds TenantSelect payloads; servers validate the
// name against their own stricter charset rules.
const MaxTenantNameLen = 64

// AppendTenantSelect appends a TypeTenantSelect frame; the payload is
// the tenant name as UTF-8 bytes.
func AppendTenantSelect(dst []byte, name string) []byte {
	dst = appendHeader(dst, TypeTenantSelect, len(name))
	return append(dst, name...)
}

// DecodeTenantSelect unpacks a TypeTenantSelect payload. The returned
// string is a copy, safe to retain past the next Decoder.Next call.
func DecodeTenantSelect(payload []byte) (string, error) {
	if len(payload) == 0 || len(payload) > MaxTenantNameLen {
		return "", fmt.Errorf("%w: tenant name %d bytes, want 1..%d", ErrBadPayload, len(payload), MaxTenantNameLen)
	}
	return string(payload), nil
}

// AppendTenantAck appends a TypeTenantAck frame.
func AppendTenantAck(dst []byte) []byte { return appendHeader(dst, TypeTenantAck, 0) }
