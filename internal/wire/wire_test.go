package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"math/rand"
	"testing"

	"github.com/graphstream/gsketch/internal/core"
	"github.com/graphstream/gsketch/internal/stream"
)

func randEdges(rng *rand.Rand, n int) []stream.Edge {
	edges := make([]stream.Edge, n)
	for i := range edges {
		edges[i] = stream.Edge{
			Src:    rng.Uint64(),
			Dst:    rng.Uint64(),
			Weight: rng.Int63() - rng.Int63(),
			Time:   rng.Int63() - rng.Int63(),
		}
	}
	return edges
}

func randQueries(rng *rand.Rand, n int) []core.EdgeQuery {
	qs := make([]core.EdgeQuery, n)
	for i := range qs {
		qs[i] = core.EdgeQuery{Src: rng.Uint64(), Dst: rng.Uint64()}
	}
	return qs
}

func randResults(rng *rand.Rand, n int) []core.Result {
	rs := make([]core.Result, n)
	for i := range rs {
		rs[i] = core.Result{
			Estimate:    rng.Int63() - rng.Int63(),
			Partition:   rng.Intn(4096) - 1, // includes NoPartition
			Outlier:     rng.Intn(2) == 1,
			ErrorBound:  rng.NormFloat64() * 1e6,
			Confidence:  rng.Float64(),
			StreamTotal: rng.Int63(),
		}
	}
	return rs
}

// TestRoundTripProperty encodes random batches of every record-bearing
// frame kind and decodes them back, checking exact equality across many
// random shapes (including empty batches).
func TestRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(64)
		edges := randEdges(rng, n)
		qs := randQueries(rng, n)
		rs := randResults(rng, n)

		var buf []byte
		buf = AppendIngest(buf, edges)
		buf = AppendQuery(buf, qs)
		buf = AppendResults(buf, rs)
		buf = AppendAck(buf, trial, n)
		buf = AppendFlush(buf)
		buf = AppendFlushAck(buf)
		buf = AppendError(buf, CodeInternal, "boom")

		dec := NewDecoder(bytes.NewReader(buf))

		f, err := dec.Next()
		if err != nil || f.Type != TypeIngest {
			t.Fatalf("trial %d: ingest frame: type %d err %v", trial, f.Type, err)
		}
		gotEdges, err := DecodeEdges(nil, f.Payload)
		if err != nil {
			t.Fatalf("trial %d: decode edges: %v", trial, err)
		}
		if len(gotEdges) != len(edges) {
			t.Fatalf("trial %d: %d edges, want %d", trial, len(gotEdges), len(edges))
		}
		for i := range edges {
			if gotEdges[i] != edges[i] {
				t.Fatalf("trial %d: edge %d = %+v, want %+v", trial, i, gotEdges[i], edges[i])
			}
		}

		f, err = dec.Next()
		if err != nil || f.Type != TypeQuery {
			t.Fatalf("trial %d: query frame: type %d err %v", trial, f.Type, err)
		}
		gotQs, err := DecodeQueries(nil, f.Payload)
		if err != nil {
			t.Fatalf("trial %d: decode queries: %v", trial, err)
		}
		for i := range qs {
			if gotQs[i] != qs[i] {
				t.Fatalf("trial %d: query %d = %+v, want %+v", trial, i, gotQs[i], qs[i])
			}
		}

		f, err = dec.Next()
		if err != nil || f.Type != TypeResults {
			t.Fatalf("trial %d: results frame: type %d err %v", trial, f.Type, err)
		}
		gotRs, err := DecodeResults(nil, f.Payload)
		if err != nil {
			t.Fatalf("trial %d: decode results: %v", trial, err)
		}
		for i := range rs {
			if gotRs[i] != rs[i] {
				t.Fatalf("trial %d: result %d = %+v, want %+v", trial, i, gotRs[i], rs[i])
			}
		}

		f, err = dec.Next()
		if err != nil || f.Type != TypeAck {
			t.Fatalf("trial %d: ack frame: type %d err %v", trial, f.Type, err)
		}
		acc, rej, err := DecodeAck(f.Payload)
		if err != nil || acc != trial || rej != n {
			t.Fatalf("trial %d: ack = (%d, %d, %v), want (%d, %d)", trial, acc, rej, err, trial, n)
		}

		for _, want := range []byte{TypeFlush, TypeFlushAck} {
			f, err = dec.Next()
			if err != nil || f.Type != want || len(f.Payload) != 0 {
				t.Fatalf("trial %d: frame type %d err %v payload %d, want type %d empty", trial, f.Type, err, len(f.Payload), want)
			}
		}

		f, err = dec.Next()
		if err != nil || f.Type != TypeError {
			t.Fatalf("trial %d: error frame: type %d err %v", trial, f.Type, err)
		}
		code, msg, err := DecodeError(f.Payload)
		if err != nil || code != CodeInternal || msg != "boom" {
			t.Fatalf("trial %d: error = (%d, %q, %v)", trial, code, msg, err)
		}

		if _, err = dec.Next(); err != io.EOF {
			t.Fatalf("trial %d: trailing read err = %v, want io.EOF", trial, err)
		}
	}
}

// TestResultSpecialFloats checks that NaN and ±Inf bounds survive the f64
// bit round trip (NaN compares unequal, so it needs its own check).
func TestResultSpecialFloats(t *testing.T) {
	rs := []core.Result{
		{ErrorBound: math.Inf(1), Confidence: math.Inf(-1)},
		{ErrorBound: math.NaN(), Confidence: math.NaN()},
	}
	f, err := NewDecoder(bytes.NewReader(AppendResults(nil, rs))).Next()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeResults(nil, f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(got[0].ErrorBound, 1) || !math.IsInf(got[0].Confidence, -1) {
		t.Fatalf("inf bounds mangled: %+v", got[0])
	}
	if !math.IsNaN(got[1].ErrorBound) || !math.IsNaN(got[1].Confidence) {
		t.Fatalf("nan bounds mangled: %+v", got[1])
	}
}

func header(version, typ byte, n uint32) []byte {
	hdr := make([]byte, HeaderSize)
	hdr[0], hdr[1] = version, typ
	binary.LittleEndian.PutUint32(hdr[4:], n)
	return hdr
}

func TestDecoderRejectsBadFrames(t *testing.T) {
	cases := []struct {
		name string
		in   []byte
		want error
	}{
		{"bad version", header(99, TypeIngest, 0), ErrBadVersion},
		{"zero version", header(0, TypeIngest, 0), ErrBadVersion},
		{"unknown type", header(Version, 0x7f, 0), ErrUnknownType},
		{"type zero", header(Version, 0, 0), ErrUnknownType},
		{"reserved bytes", append(header(Version, TypeFlush, 0)[:2], 1, 0, 0, 0, 0, 0), ErrBadHeader},
		{"truncated header", []byte{Version, TypeIngest, 0}, io.ErrUnexpectedEOF},
		{"truncated payload", header(Version, TypeIngest, 64), io.ErrUnexpectedEOF},
		{"oversized", header(Version, TypeIngest, MaxFrameBytes+1), ErrFrameTooLarge},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewDecoder(bytes.NewReader(tc.in)).Next()
			if !errors.Is(err, tc.want) {
				t.Fatalf("err = %v, want %v", err, tc.want)
			}
		})
	}
}

// TestDecoderSizeBound checks the payload cap really bounds allocation: a
// frame claiming just under 4 GiB must be rejected from the header alone
// on a decoder with a small bound.
func TestDecoderSizeBound(t *testing.T) {
	in := header(Version, TypeIngest, math.MaxUint32-7)
	_, err := NewDecoderSize(bytes.NewReader(in), 1<<10).Next()
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestPayloadWidthValidation(t *testing.T) {
	if _, err := DecodeEdges(nil, make([]byte, EdgeSize+1)); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("edges: err = %v, want ErrBadPayload", err)
	}
	if _, err := DecodeQueries(nil, make([]byte, QuerySize-1)); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("queries: err = %v, want ErrBadPayload", err)
	}
	if _, err := DecodeResults(nil, make([]byte, ResultSize*2-3)); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("results: err = %v, want ErrBadPayload", err)
	}
	if _, _, err := DecodeAck(make([]byte, AckSize+4)); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("ack: err = %v, want ErrBadPayload", err)
	}
	if _, _, err := DecodeError(make([]byte, 1)); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("error: err = %v, want ErrBadPayload", err)
	}
}

// TestDecoderPayloadReuse pins the documented aliasing contract: the
// payload of frame k is invalidated by reading frame k+1.
func TestDecoderPayloadReuse(t *testing.T) {
	var buf []byte
	buf = AppendAck(buf, 1, 0)
	buf = AppendAck(buf, 2, 0)
	dec := NewDecoder(bytes.NewReader(buf))
	f1, err := dec.Next()
	if err != nil {
		t.Fatal(err)
	}
	p1 := f1.Payload
	if _, err := dec.Next(); err != nil {
		t.Fatal(err)
	}
	acc, _, err := DecodeAck(p1)
	if err != nil {
		t.Fatal(err)
	}
	if acc != 2 {
		t.Fatalf("payload not reused (acc=%d); decoder grew a fresh buffer per frame", acc)
	}
}

func BenchmarkDecodeIngestFrame(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	edges := randEdges(rng, 8192)
	frame := AppendIngest(nil, edges)
	var scratch []stream.Edge
	b.SetBytes(int64(len(frame)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dec := NewDecoder(bytes.NewReader(frame))
		f, err := dec.Next()
		if err != nil {
			b.Fatal(err)
		}
		scratch, err = DecodeEdges(scratch[:0], f.Payload)
		if err != nil {
			b.Fatal(err)
		}
	}
}
