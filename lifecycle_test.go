package gsketch_test

import (
	"context"
	"path/filepath"
	"testing"
	"time"

	gsketch "github.com/graphstream/gsketch"
)

// Driving an engine through many pivots with a compaction policy must make
// ErrMaxGenerations unreachable: the former hard cap becomes compaction
// pressure, generations stay bounded, memory plateaus, and every answer
// still covers the whole stream. This is the tentpole acceptance scenario
// through the public API.
func TestEngineAutoCompactionPastCap(t *testing.T) {
	const cap = 3
	ctx := context.Background()
	edges := engineTestStream(60000, 77)
	sample := edges[:2000]

	eng, err := gsketch.Open(engineTestCfg,
		gsketch.WithSample(sample),
		gsketch.WithAdaptive(
			gsketch.ChainConfig{SampleSize: 2048, Seed: 7, MaxGenerations: cap},
			gsketch.AdaptConfig{Sketch: engineTestCfg},
		),
		gsketch.WithCompaction(gsketch.CompactionPolicy{
			MaxGenerations: cap,
			Fold:           2,
			Interval:       time.Hour, // rotation pressure drives the folds deterministically
		}, nil),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	// 12 pivots: each phase ingests a slice and rotates. Past the cap the
	// manager must fold instead of refusing.
	const pivots = 12
	seg := len(edges) / (pivots + 1)
	var peak int
	for p := 0; p < pivots; p++ {
		if err := eng.Ingest(ctx, edges[p*seg:(p+1)*seg]...); err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Repartition(); err != nil {
			t.Fatalf("pivot %d: repartition refused despite compaction policy: %v", p, err)
		}
		st := eng.Stats()
		if st.Adapt.Generations > cap {
			t.Fatalf("pivot %d: %d generations, cap %d", p, st.Adapt.Generations, cap)
		}
		if st.MemoryBytes > peak {
			peak = st.MemoryBytes
		}
	}
	if err := eng.Ingest(ctx, edges[pivots*seg:]...); err != nil {
		t.Fatal(err)
	}

	st := eng.Stats()
	if st.Adapt.Compactions == 0 {
		t.Fatal("no compactions recorded across 12 pivots at cap 3")
	}
	// The chain represents every source build despite holding ≤cap
	// generations.
	if st.Adapt.CompactedFrom != pivots+1 {
		t.Fatalf("compacted-from = %d, want %d source builds", st.Adapt.CompactedFrom, pivots+1)
	}
	if limit := (cap + 1) * (96 << 10); peak > limit {
		t.Fatalf("peak memory %d exceeds the cap plateau %d", peak, limit)
	}

	// Volume conservation chain-wide.
	var want int64
	for _, e := range edges {
		want += e.Weight
	}
	if got := eng.Stats().StreamTotal; got != want {
		t.Fatalf("stream total %d, want %d after %d pivots", got, want, pivots)
	}
}

// WithTiering + WithDecay through the facade: cold generations spill under
// the residency cap (visible in stats), answers survive spill + lazy
// reload, a snapshot round-trips with lifecycle state reapplied, and
// manual Engine.Compact works alongside.
func TestEngineTieringDecaySnapshot(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	edges := engineTestStream(30000, 79)
	qs := engineTestQueries(edges, 200)

	eng, err := gsketch.Open(engineTestCfg,
		gsketch.WithSample(edges[:2000]),
		gsketch.WithAdaptive(
			gsketch.ChainConfig{SampleSize: 32768, Seed: 7, MaxGenerations: 8},
			gsketch.AdaptConfig{Sketch: engineTestCfg},
		),
		gsketch.WithTiering(filepath.Join(dir, "tiers"), 1),
		gsketch.WithDecay(24*time.Hour), // long half-life: weight ≈ 1 within test runtime
		gsketch.WithSnapshotFile(filepath.Join(dir, "chain.gsk")),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	seg := len(edges) / 4
	for p := 0; p < 3; p++ {
		if err := eng.Ingest(ctx, edges[p*seg:(p+1)*seg]...); err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Repartition(); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Ingest(ctx, edges[3*seg:]...); err != nil {
		t.Fatal(err)
	}

	// 4 generations, resident cap 1 ⇒ spilled cold generations show up in
	// the lifecycle gauges.
	st := eng.Stats()
	if st.Adapt.Generations != 4 {
		t.Fatalf("generations = %d, want 4", st.Adapt.Generations)
	}
	if st.Adapt.TieredGenerations < 2 || st.Adapt.TieredBytes <= 0 {
		t.Fatalf("tiering gauges = %d gens / %d bytes, want ≥2 spilled", st.Adapt.TieredGenerations, st.Adapt.TieredBytes)
	}
	if st.Adapt.ResidentGenerations >= st.Adapt.Generations {
		t.Fatalf("resident = %d of %d, want fewer under the cap", st.Adapt.ResidentGenerations, st.Adapt.Generations)
	}

	// Gathered answers (lazy reloads included, decay ≈1) cover the stream.
	live := eng.QueryBatch(qs)
	exact := map[[2]uint64]int64{}
	for _, e := range edges {
		exact[[2]uint64{e.Src, e.Dst}] += e.Weight
	}
	for i, q := range qs {
		if truth := exact[[2]uint64{q.Src, q.Dst}]; live[i].Estimate < truth {
			t.Fatalf("edge (%d,%d): estimate %d < truth %d with tiered generations", q.Src, q.Dst, live[i].Estimate, truth)
		}
	}

	// Manual compaction through the facade folds the two oldest frozen
	// generations (their tier files are discarded with them).
	res, err := eng.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if res.Folded != 2 || res.Generations != 3 {
		t.Fatalf("manual compact = %+v, want 2 folded into 3 generations", res)
	}
	if got := eng.Stats().Adapt.Compactions; got != 1 {
		t.Fatalf("compactions = %d, want 1", got)
	}

	// Snapshot (spilled or resident alike) → restore: generations,
	// lifecycle lineage and answers survive; decay/tiering re-applied to
	// the restored chain keeps serving.
	if _, err := eng.SaveSnapshot(""); err != nil {
		t.Fatal(err)
	}
	want := eng.QueryBatch(qs)
	if err := eng.RestoreSnapshot(""); err != nil {
		t.Fatal(err)
	}
	st = eng.Stats()
	if st.Adapt.Generations != 3 || st.Adapt.CompactedFrom != 4 {
		t.Fatalf("restored chain = %d generations from %d builds, want 3 from 4", st.Adapt.Generations, st.Adapt.CompactedFrom)
	}
	got := eng.QueryBatch(qs)
	for i := range qs {
		if got[i].Estimate != want[i].Estimate {
			t.Fatalf("query %d: restored estimate %d != live %d", i, got[i].Estimate, want[i].Estimate)
		}
	}
}

// Lifecycle options demand a generation chain to act on: Open must refuse
// them on a plain sketch rather than silently doing nothing.
func TestLifecycleOptionsNeedChain(t *testing.T) {
	edges := engineTestStream(4000, 81)
	bad := [][]gsketch.Option{
		{gsketch.WithSample(edges[:500]), gsketch.WithCompaction(gsketch.CompactionPolicy{MaxGenerations: 2}, nil)},
		{gsketch.WithSample(edges[:500]), gsketch.WithTiering(t.TempDir(), 1)},
		{gsketch.WithSample(edges[:500]), gsketch.WithDecay(time.Hour)},
	}
	for i, opts := range bad {
		if eng, err := gsketch.Open(engineTestCfg, opts...); err == nil {
			eng.Close()
			t.Fatalf("case %d: lifecycle option accepted without an adaptive chain", i)
		}
	}
	// Half-configured tiering is a validation error, not a silent default.
	if eng, err := gsketch.Open(engineTestCfg,
		gsketch.WithSample(edges[:500]),
		gsketch.WithAdaptive(gsketch.ChainConfig{}, gsketch.AdaptConfig{Sketch: engineTestCfg}),
		gsketch.WithTiering("", 3),
	); err == nil {
		eng.Close()
		t.Fatal("tiering with no directory accepted")
	}
}
