package gsketch

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"github.com/graphstream/gsketch/internal/adapt"
	"github.com/graphstream/gsketch/internal/compact"
	"github.com/graphstream/gsketch/internal/core"
	"github.com/graphstream/gsketch/internal/ingest"
	"github.com/graphstream/gsketch/internal/window"
)

// Option configures an Engine at Open time.
type Option func(*engineOptions)

// engineOptions is the resolved option set of one Open call.
type engineOptions struct {
	// bootstrap sources (exactly one)
	dataSample  []Edge
	sampleSet   bool
	global      bool
	estimator   Estimator
	restore     io.Reader
	restorePath string

	workload []Edge

	adaptive     bool
	chainCfg     adapt.ChainConfig
	managerCfg   adapt.ManagerConfig
	autoInterval time.Duration
	autoErr      func(error)

	compactPolicy *compact.Policy
	compactErr    func(error)
	tierDir       string
	tierResident  int
	decayHalfLife time.Duration

	ingestCfg   *ingest.Config
	windowCfg   *window.StoreConfig
	windowStore *window.Store

	snapshotPath    string
	snapshotOnClose bool

	recorderCap  int
	recorderSeed uint64

	now func() time.Time
}

// WithSample supplies the data sample partitioning is built from — the
// bootstrap source of the paper's partitioned estimator. The sample steers
// partitioning only; stream the full data in afterwards with Ingest.
func WithSample(data []Edge) Option {
	return func(o *engineOptions) { o.dataSample, o.sampleSet = data, true }
}

// WithWorkloadSample supplies a query-workload sample: partitioning then
// minimizes the workload-aware objective of §4.2 instead of the data-only
// §4.1, and the sample becomes the drift baseline of an adaptive engine.
func WithWorkloadSample(workload []Edge) Option {
	return func(o *engineOptions) { o.workload = workload }
}

// WithGlobal bootstraps the unpartitioned Global Sketch baseline of §3.2
// instead of a partitioned gSketch (no sample needed, weaker bounds).
func WithGlobal() Option {
	return func(o *engineOptions) { o.global = true }
}

// WithEstimator adopts an estimator built elsewhere as the engine's core.
// A *Concurrent or *Chain is served as-is; anything else is wrapped in a
// Concurrent so the engine's paths go through the striped locks.
func WithEstimator(est Estimator) Option {
	return func(o *engineOptions) { o.estimator = est }
}

// WithRestore bootstraps the engine from a snapshot stream previously
// written by Save (single-sketch or chain container). The reader is
// consumed during Open.
func WithRestore(r io.Reader) Option {
	return func(o *engineOptions) { o.restore = r }
}

// WithRestoreFile bootstraps the engine from a snapshot file.
func WithRestoreFile(path string) Option {
	return func(o *engineOptions) { o.restorePath = path }
}

// WithAdaptive turns the estimator into a generation chain managed for
// adaptive repartitioning: the chain's reservoir samples the live stream,
// the manager watches drift (live workload vs the partitioning's baseline,
// plus the head's outlier read share), and Repartition — on demand or via
// WithAutoRepartition — rebuilds the partitioning from live samples and
// hot-swaps it in as a new generation without forgetting the stream
// already summarized.
//
// cc parameterizes the chain (reservoir size, generation cap); mc the
// manager thresholds. A zero mc.Sketch inherits the Open configuration; a
// nil mc.Baseline inherits WithWorkloadSample's sample.
func WithAdaptive(cc ChainConfig, mc AdaptConfig) Option {
	return func(o *engineOptions) {
		o.adaptive = true
		o.chainCfg = cc
		o.managerCfg = mc
	}
}

// WithAutoRepartition starts the drift-watching auto-trigger loop: every
// interval the manager evaluates drift and rebuilds + hot-swaps when a
// threshold is crossed. onErr receives rebuild failures (nil drops them; a
// failed rebuild leaves the serving chain untouched). Requires
// WithAdaptive. Close stops and awaits the loop before anything else shuts
// down.
func WithAutoRepartition(interval time.Duration, onErr func(error)) Option {
	return func(o *engineOptions) {
		o.autoInterval = interval
		o.autoErr = onErr
	}
}

// WithCompaction mounts the generation-lifecycle compaction policy on an
// adaptive engine: a background loop (period p.Interval) folds the oldest
// p.Fold frozen generations into one whenever the chain length, resident
// memory, or oldest-generation age crosses a configured trigger, and the
// repartition manager compacts on demand before a rotation that would hit
// the chain's generation cap — so ErrMaxGenerations becomes unreachable
// under policy. Folding is lossless (cell-wise counter merge) when the
// generations share a hash layout, else a re-partition from their retained
// reservoirs. onErr receives background compaction failures (nil drops
// them; a failed fold leaves the serving chain untouched). Requires
// WithAdaptive (or an adopted *Chain estimator).
func WithCompaction(p CompactionPolicy, onErr func(error)) Option {
	return func(o *engineOptions) { pp := p; o.compactPolicy = &pp; o.compactErr = onErr }
}

// WithTiering spills cold frozen generations to files under dir, keeping at
// most maxResident frozen generations' counters in RAM (the live head
// always stays resident). Spilled generations reload lazily on query.
// Requires WithAdaptive (or an adopted *Chain estimator).
func WithTiering(dir string, maxResident int) Option {
	return func(o *engineOptions) { o.tierDir = dir; o.tierResident = maxResident }
}

// WithDecay enables exponential age weighting at gather time: a frozen
// generation frozen `age` ago contributes to chain answers with weight
// 2^(-age/halfLife) — estimates and error bounds scale together, so bounds
// stay sound for the decayed quantity. Requires WithAdaptive (or an adopted
// *Chain estimator).
func WithDecay(halfLife time.Duration) Option {
	return func(o *engineOptions) { o.decayHalfLife = halfLife }
}

// WithIngest mounts the parallel batch-ingest pipeline between
// Ingest/TryIngest and the estimator: a bounded multi-producer queue of
// edge batches drained by N workers through the striped locks. The zero
// config selects the pipeline defaults (GOMAXPROCS workers, 1024-edge
// batches, 4×workers queue depth).
func WithIngest(cfg IngestConfig) Option {
	return func(o *engineOptions) { c := cfg; o.ingestCfg = &c }
}

// WithWindows mounts a time-windowed store (§5): ingested edges are also
// observed by per-window partitioned sketches, and QueryWindow answers
// time-range queries. A zero cfg.Sketch inherits the Open configuration.
func WithWindows(cfg WindowConfig) Option {
	return func(o *engineOptions) { c := cfg; o.windowCfg = &c }
}

// WithWindowStore adopts an existing window store instead of building one.
func WithWindowStore(s *WindowStore) Option {
	return func(o *engineOptions) { o.windowStore = s }
}

// WithSnapshotDir gives snapshot persistence a home directory:
// SaveSnapshot/RestoreSnapshot default to <dir>/gsketch.snap.
func WithSnapshotDir(dir string) Option {
	return func(o *engineOptions) { o.snapshotPath = filepath.Join(dir, "gsketch.snap") }
}

// WithSnapshotFile sets the exact default snapshot path (an alternative to
// WithSnapshotDir for callers that name the file themselves).
func WithSnapshotFile(path string) Option {
	return func(o *engineOptions) { o.snapshotPath = path }
}

// WithSnapshotOnClose persists a final snapshot to the configured path
// during Close, after the ingest queue drains and the adaptive loop stops.
func WithSnapshotOnClose() Option {
	return func(o *engineOptions) { o.snapshotOnClose = true }
}

// WithWorkloadRecorder samples served query traffic into a live workload
// reservoir (uniform over queries seen) in the paper's workload-sample
// format. The sample steers adaptive rebuilds and exports via Workload /
// WriteWorkloadTo for offline §4.2 builds. capacity <= 0 disables
// recording.
func WithWorkloadRecorder(capacity int, seed uint64) Option {
	return func(o *engineOptions) {
		o.recorderCap = capacity
		o.recorderSeed = seed
	}
}

// WithClock overrides the engine's clock (snapshot ages, recorded query
// timestamps) — for tests.
func WithClock(now func() time.Time) Option {
	return func(o *engineOptions) { o.now = now }
}

// validate rejects contradictory option sets before anything is built.
func (o *engineOptions) validate() error {
	sources := 0
	for _, on := range []bool{o.sampleSet, o.global, o.estimator != nil, o.restore != nil || o.restorePath != ""} {
		if on {
			sources++
		}
	}
	if sources != 1 {
		return fmt.Errorf("gsketch: Open needs exactly one bootstrap source — WithSample, WithGlobal, WithEstimator or WithRestore (got %d)", sources)
	}
	if o.restore != nil && o.restorePath != "" {
		return errors.New("gsketch: WithRestore and WithRestoreFile are mutually exclusive")
	}
	if o.global && o.adaptive {
		return errors.New("gsketch: WithAdaptive needs a partitioned gSketch; it is incompatible with WithGlobal")
	}
	if o.autoInterval > 0 && !o.adaptive {
		return errors.New("gsketch: WithAutoRepartition requires WithAdaptive")
	}
	if o.autoInterval < 0 {
		return errors.New("gsketch: negative auto-repartition interval")
	}
	if o.windowCfg != nil && o.windowStore != nil {
		return errors.New("gsketch: WithWindows and WithWindowStore are mutually exclusive")
	}
	if o.decayHalfLife < 0 {
		return errors.New("gsketch: negative decay half-life")
	}
	if o.tierResident < 0 {
		return errors.New("gsketch: negative tiering residency cap")
	}
	if (o.tierDir == "") != (o.tierResident == 0) {
		return errors.New("gsketch: WithTiering needs both a directory and a positive residency cap")
	}
	if o.compactPolicy != nil && o.compactPolicy.Interval < 0 {
		return errors.New("gsketch: negative compaction interval")
	}
	if o.lifecycleConfigured() && !o.adaptive && o.estimator == nil {
		return errors.New("gsketch: WithCompaction/WithTiering/WithDecay need a generation chain (WithAdaptive or an adopted *Chain)")
	}
	if o.snapshotOnClose && o.snapshotPath == "" {
		return errors.New("gsketch: WithSnapshotOnClose needs a snapshot path (WithSnapshotDir or WithSnapshotFile)")
	}
	return nil
}

// lifecycleConfigured reports whether any generation-lifecycle option
// (compaction, tiering, decay) was set.
func (o *engineOptions) lifecycleConfigured() bool {
	return o.compactPolicy != nil || o.tierDir != "" || o.decayHalfLife > 0
}

// buildEstimator resolves the bootstrap source into the serving estimator
// (and the chain when adaptive).
func (o *engineOptions) buildEstimator(cfg Config) (servingEstimator, *adapt.Chain, error) {
	wrap := func(g *GSketch) (servingEstimator, *adapt.Chain, error) {
		if o.adaptive {
			c := adapt.NewChain(g, o.chainCfg)
			return c, c, nil
		}
		return core.NewConcurrent(g), nil, nil
	}

	switch {
	case o.estimator != nil:
		switch v := o.estimator.(type) {
		case *adapt.Chain:
			// The chain owns its own synchronization (a Concurrent per
			// generation); wrapping it again would serialize every reader
			// and writer behind one mutex.
			return v, v, nil
		case *core.GSketch:
			return wrap(v)
		case *core.Concurrent:
			if o.adaptive {
				return nil, nil, errors.New("gsketch: WithAdaptive cannot chain a *Concurrent; pass the underlying *GSketch or a *Chain")
			}
			return v, nil, nil
		default:
			if o.adaptive {
				return nil, nil, fmt.Errorf("gsketch: WithAdaptive cannot chain a %T; pass a *GSketch or a *Chain", v)
			}
			return core.NewConcurrent(v), nil, nil
		}

	case o.restore != nil || o.restorePath != "":
		src := o.restore
		if src == nil {
			f, err := os.Open(o.restorePath)
			if err != nil {
				return nil, nil, err
			}
			defer f.Close()
			src = f
		}
		gens, metas, err := core.ReadChainMeta(src)
		if err != nil {
			return nil, nil, fmt.Errorf("gsketch: restore: %w", err)
		}
		if o.adaptive {
			c := adapt.NewChainFromMeta(gens, metas, o.chainCfg)
			return c, c, nil
		}
		if len(gens) != 1 {
			return nil, nil, fmt.Errorf("%w: snapshot carries %d generations", ErrNotAdaptive, len(gens))
		}
		return core.NewConcurrent(gens[0]), nil, nil

	case o.global:
		g, err := core.BuildGlobalSketch(cfg)
		if err != nil {
			return nil, nil, err
		}
		return core.NewConcurrent(g), nil, nil

	default:
		g, err := core.BuildGSketch(cfg, o.dataSample, o.workload)
		if err != nil {
			return nil, nil, err
		}
		return wrap(g)
	}
}
