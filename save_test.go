package gsketch_test

import (
	"bytes"
	"io"
	"testing"

	gsketch "github.com/graphstream/gsketch"
)

// buildPopulated returns a populated Concurrent-wrapped gSketch plus the
// stream that fed it.
func buildPopulated(t *testing.T) (*gsketch.Concurrent, []gsketch.Edge) {
	t.Helper()
	edges := synthetic(20_000)
	g, err := gsketch.New(gsketch.Config{TotalBytes: 64 << 10, Seed: 7}, edges[:2000], nil)
	if err != nil {
		t.Fatal(err)
	}
	c := gsketch.NewConcurrent(g)
	gsketch.Populate(c, edges)
	return c, edges
}

// TestSaveLoadRoundTripThroughFacade is the satellite round-trip check:
// Save a Concurrent-wrapped sketch through the public API, Load it, and
// require EstimateBatch to answer byte-identically — estimates, partitions,
// bounds, confidences and stream totals all equal.
func TestSaveLoadRoundTripThroughFacade(t *testing.T) {
	c, edges := buildPopulated(t)

	var buf bytes.Buffer
	n, err := gsketch.Save(c, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("Save reported %d bytes, wrote %d", n, buf.Len())
	}

	restored, err := gsketch.Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	qs := make([]gsketch.EdgeQuery, 0, 1000)
	for i := 0; i < 1000; i++ {
		qs = append(qs, gsketch.EdgeQuery{Src: edges[i].Src, Dst: edges[i].Dst})
	}
	// One absent edge so the outlier path round-trips too.
	qs = append(qs, gsketch.EdgeQuery{Src: 1 << 60, Dst: 2})

	want := gsketch.EstimateBatch(c, qs)
	got := gsketch.EstimateBatch(gsketch.NewConcurrent(restored), qs)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("query %d: restored %+v != live %+v", i, got[i], want[i])
		}
	}

	// A second Save of the restored sketch must reproduce the same bytes —
	// the serialization is canonical.
	var buf2 bytes.Buffer
	if _, err := gsketch.Save(restored, &buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("save → load → save is not byte-stable")
	}
}

// TestChainRoundTripThroughFacade drives the adaptive public API: build a
// chain, repartition mid-stream, save the whole chain, and reload it with
// identical answers — including loading a plain pre-chain snapshot as a
// one-generation chain.
func TestChainRoundTripThroughFacade(t *testing.T) {
	edges := synthetic(20_000)
	g, err := gsketch.New(gsketch.Config{TotalBytes: 64 << 10, Seed: 7}, edges[:2000], nil)
	if err != nil {
		t.Fatal(err)
	}
	chain := gsketch.NewChain(g, gsketch.ChainConfig{SampleSize: 1024, Seed: 3})
	gsketch.Populate(chain, edges[:10_000])
	if _, err := gsketch.Repartition(chain, gsketch.Config{TotalBytes: 64 << 10, Seed: 8}, edges[:200]); err != nil {
		t.Fatal(err)
	}
	gsketch.Populate(chain, edges[10_000:])
	if chain.Generations() != 2 {
		t.Fatalf("generations = %d, want 2", chain.Generations())
	}

	var buf bytes.Buffer
	if _, err := chain.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := gsketch.LoadChain(bytes.NewReader(buf.Bytes()), chain.Config())
	if err != nil {
		t.Fatal(err)
	}
	qs := make([]gsketch.EdgeQuery, 0, 500)
	for i := 0; i < 500; i++ {
		qs = append(qs, gsketch.EdgeQuery{Src: edges[i].Src, Dst: edges[i].Dst})
	}
	want := gsketch.EstimateBatch(chain, qs)
	got := gsketch.EstimateBatch(restored, qs)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("query %d: restored %+v != live %+v", i, got[i], want[i])
		}
	}

	// A pre-chain snapshot (plain Save) loads as a one-generation chain.
	var plain bytes.Buffer
	if _, err := gsketch.Save(g, &plain); err != nil {
		t.Fatal(err)
	}
	single, err := gsketch.LoadChain(bytes.NewReader(plain.Bytes()), gsketch.ChainConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if single.Generations() != 1 {
		t.Fatalf("pre-chain snapshot loaded as %d generations", single.Generations())
	}
}

// TestSaveRejectsUnserializableEstimator checks the typed failure instead
// of a garbage write.
func TestSaveRejectsUnserializableEstimator(t *testing.T) {
	gl, err := gsketch.NewGlobal(gsketch.Config{TotalWidth: 256, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gsketch.Save(gl, io.Discard); err == nil {
		t.Fatal("GlobalSketch saved unexpectedly")
	}
	if _, err := gsketch.Save(gsketch.NewConcurrent(gl), io.Discard); err == nil {
		t.Fatal("Concurrent(GlobalSketch) saved unexpectedly")
	}
}

// TestLoadRejectsCorruptInput drives the error paths of the deserializer:
// truncations at every prefix length and flipped bytes must fail loudly,
// never return a silently wrong sketch.
func TestLoadRejectsCorruptInput(t *testing.T) {
	c, _ := buildPopulated(t)
	var buf bytes.Buffer
	if _, err := gsketch.Save(c, &buf); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()

	if _, err := gsketch.Load(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input loaded")
	}
	// Truncations: sample prefix lengths across the blob (every byte would
	// be slow at this size).
	for cut := 1; cut < len(blob); cut += 1 + len(blob)/257 {
		if _, err := gsketch.Load(bytes.NewReader(blob[:cut])); err == nil {
			t.Fatalf("truncated input (%d of %d bytes) loaded", cut, len(blob))
		}
	}
	// Header corruptions: magic and version.
	for _, off := range []int{0, 4} {
		bad := append([]byte(nil), blob...)
		bad[off] ^= 0xff
		if _, err := gsketch.Load(bytes.NewReader(bad)); err == nil {
			t.Fatalf("corrupt byte at offset %d loaded", off)
		}
	}
	// Counter corruption must be caught by the per-sketch checksum.
	bad := append([]byte(nil), blob...)
	bad[len(bad)/2] ^= 0xff
	if _, err := gsketch.Load(bytes.NewReader(bad)); err == nil {
		t.Fatal("corrupt counter payload loaded")
	}
}
