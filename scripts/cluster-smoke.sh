#!/usr/bin/env bash
# End-to-end smoke test of the cluster subsystem against real binaries:
# start two shard servers and a scatter-gather coordinator over their wire
# ports, ingest through the coordinator, query back combined answers with
# bounds, fan a snapshot out and restore it, then kill one shard and
# verify the degraded surface — per-shard health in /stats and the typed
# partial-failure query error. CI runs this with a race-instrumented
# build.
set -euo pipefail

BIN=${1:-bin/gsketch-serve}
WIRECLI=${2:-bin/gsketch-wire}
S0_ADDR=${SMOKE_S0_ADDR:-127.0.0.1:7271}
S0_WADDR=${SMOKE_S0_WIRE_ADDR:-127.0.0.1:7272}
S1_ADDR=${SMOKE_S1_ADDR:-127.0.0.1:7273}
S1_WADDR=${SMOKE_S1_WIRE_ADDR:-127.0.0.1:7274}
CO_ADDR=${SMOKE_CO_ADDR:-127.0.0.1:7275}
CO_WADDR=${SMOKE_CO_WIRE_ADDR:-127.0.0.1:7276}
BASE="http://$CO_ADDR"
TMP=$(mktemp -d)
PIDS=()

cleanup() {
  for pid in "${PIDS[@]:-}"; do
    if [[ -n "$pid" ]] && kill -0 "$pid" 2>/dev/null; then
      kill -9 "$pid" 2>/dev/null || true
    fi
  done
  rm -rf "$TMP"
}
trap cleanup EXIT

fail() { echo "cluster-smoke: FAIL: $*" >&2; exit 1; }

wait_healthy() { # url name pid
  for _ in $(seq 1 100); do
    if curl -sf "$1/healthz" >/dev/null 2>&1; then return 0; fi
    kill -0 "$3" 2>/dev/null || fail "$2 exited during startup"
    sleep 0.1
  done
  fail "$2 never became healthy"
}

# One shared partitioning sample: every shard and the coordinator's router
# must be built from the same sample and seed so routing agrees.
for i in $(seq 0 199); do
  echo "$((i % 10)) $((100 + i % 40)) 1 $i"
done > "$TMP/sample.txt"

"$BIN" -addr "$S0_ADDR" -wire-addr "$S0_WADDR" -sample "$TMP/sample.txt" \
  -snapshot "$TMP/shard0.gsk" -workers 2 -batch 64 &
PIDS+=($!)
S0_PID=${PIDS[-1]}
"$BIN" -addr "$S1_ADDR" -wire-addr "$S1_WADDR" -sample "$TMP/sample.txt" \
  -snapshot "$TMP/shard1.gsk" -workers 2 -batch 64 &
PIDS+=($!)
S1_PID=${PIDS[-1]}
wait_healthy "http://$S0_ADDR" "shard 0" "$S0_PID"
wait_healthy "http://$S1_ADDR" "shard 1" "$S1_PID"

"$BIN" -addr "$CO_ADDR" -wire-addr "$CO_WADDR" \
  -cluster "$S0_WADDR,$S1_WADDR" -cluster-ping 200ms \
  -sample "$TMP/sample.txt" -snapshot "$TMP/cluster.manifest" &
PIDS+=($!)
CO_PID=${PIDS[-1]}
wait_healthy "$BASE" "coordinator" "$CO_PID"

# Ingest through the coordinator: edge (1,101) five times, (2,102) three
# times, synchronously drained through both shard pipelines.
{
  for _ in 1 2 3 4 5; do echo '{"src":1,"dst":101}'; done
  for _ in 1 2 3; do echo '{"src":2,"dst":102,"weight":1}'; done
} > "$TMP/stream.ndjson"
ingest=$(curl -sf -X POST --data-binary @"$TMP/stream.ndjson" "$BASE/ingest?sync=1")
grep -q '"accepted":8' <<<"$ingest" || fail "ingest reply: $ingest"

# Scatter-gather query: combined estimates with summed bounds attached.
query='{"queries":[{"src":1,"dst":101},{"src":2,"dst":102}]}'
answer=$(curl -sf -X POST -H 'Content-Type: application/json' -d "$query" "$BASE/query")
est1=$(grep -o '"estimate":[0-9]*' <<<"$answer" | head -1 | cut -d: -f2)
est2=$(grep -o '"estimate":[0-9]*' <<<"$answer" | sed -n 2p | cut -d: -f2)
[[ -n "$est1" && "$est1" -ge 5 ]] || fail "estimate for (1,101) = '$est1', want >= 5 ($answer)"
[[ -n "$est2" && "$est2" -ge 3 ]] || fail "estimate for (2,102) = '$est2', want >= 3 ($answer)"
grep -q '"error_bound"' <<<"$answer" || fail "no error bound in $answer"
grep -q '"confidence"' <<<"$answer" || fail "no confidence in $answer"

# The coordinator's wire port answers pings with cluster-summed gauges;
# the gauges refresh on the health-probe tick, so allow a few.
for _ in $(seq 1 50); do
  ping=$("$WIRECLI" -addr "$CO_WADDR" ping)
  if grep -q 'stream_total 8' <<<"$ping"; then break; fi
  sleep 0.1
done
grep -q 'stream_total 8' <<<"$ping" || fail "coordinator ping: $ping"

# Cluster-aware stats: both shards present and healthy.
stats=$(curl -sf "$BASE/stats")
grep -q '"cluster_shards":2' <<<"$stats" || fail "stats: $stats"
grep -q '"cluster_healthy":2' <<<"$stats" || fail "stats: $stats"
grep -q '"cluster_degraded":0' <<<"$stats" || fail "stats: $stats"

# Coordinator observability: /readyz answers while shards are healthy, and
# /metrics exposes cluster aggregates plus per-shard labeled series.
curl -sf "$BASE/readyz" >/dev/null || fail "coordinator readyz not 200 with healthy shards"
metrics=$(curl -sf "$BASE/metrics")
grep -q '^# TYPE gsketch_cluster_healthy gauge' <<<"$metrics" || fail "metrics missing cluster gauge"
grep -q '^gsketch_cluster_healthy 2$' <<<"$metrics" || fail "cluster_healthy gauge: $metrics"
grep -q "gsketch_shard_up{shard=\"0\",addr=\"$S0_WADDR\"} 1" <<<"$metrics" || fail "shard 0 series missing"
grep -q "gsketch_shard_up{shard=\"1\",addr=\"$S1_WADDR\"} 1" <<<"$metrics" || fail "shard 1 series missing"
grep -q 'gsketch_http_request_duration_seconds_bucket{route="POST /ingest",le="+Inf"}' <<<"$metrics" \
  || fail "coordinator route histogram missing +Inf bucket"

# Snapshot fan-out: each shard persists to its own disk, the coordinator
# writes the topology manifest locally.
save=$(curl -sf -X POST "$BASE/snapshot/save")
[[ -s "$TMP/cluster.manifest" ]] || fail "manifest missing after save: $save"
[[ -s "$TMP/shard0.gsk" ]] || fail "shard 0 snapshot missing after save"
[[ -s "$TMP/shard1.gsk" ]] || fail "shard 1 snapshot missing after save"
grep -q '"schema": 1' "$TMP/cluster.manifest" || fail "manifest: $(cat "$TMP/cluster.manifest")"

# Restore fans back out; the cluster answers identically afterwards.
restore=$(curl -sf -X POST "$BASE/snapshot/restore")
grep -q '"stream_total":8' <<<"$restore" || fail "restore reply: $restore"
grep -q '"shards":2' <<<"$restore" || fail "restore reply: $restore"
answer2=$(curl -sf -X POST -H 'Content-Type: application/json' -d "$query" "$BASE/query")
[[ "$answer2" == "$answer" ]] || fail "answers differ after restore: $answer vs $answer2"

# Kill shard 1 abruptly; the prober marks it degraded within a few ticks.
kill -9 "$S1_PID"
for _ in $(seq 1 50); do
  stats=$(curl -sf "$BASE/stats")
  if grep -q '"cluster_degraded":1' <<<"$stats"; then break; fi
  sleep 0.1
done
grep -q '"cluster_degraded":1' <<<"$stats" || fail "shard death never surfaced: $stats"
grep -q '"healthy":false' <<<"$stats" || fail "no unhealthy shard in stats: $stats"
grep -q '"last_error"' <<<"$stats" || fail "degraded shard carries no error: $stats"

# A scatter over a degraded cluster is a typed partial failure: HTTP 502
# naming the lost shard, not a silent partial answer.
code=$(curl -s -o "$TMP/partial.json" -w '%{http_code}' \
  -X POST -H 'Content-Type: application/json' -d "$query" "$BASE/query")
[[ "$code" == "502" ]] || fail "degraded query status $code, want 502 ($(cat "$TMP/partial.json"))"
grep -q 'shard 1' "$TMP/partial.json" || fail "partial error does not name the shard: $(cat "$TMP/partial.json")"

# One dead shard degrades metrics but not readiness (partial service).
metrics=$(curl -sf "$BASE/metrics")
grep -q '^gsketch_cluster_healthy 1$' <<<"$metrics" || fail "cluster_healthy after shard death: $metrics"
grep -q "gsketch_shard_up{shard=\"1\",addr=\"$S1_WADDR\"} 0" <<<"$metrics" || fail "dead shard still up in metrics"
curl -sf "$BASE/readyz" >/dev/null || fail "coordinator readyz must stay 200 with one healthy shard"

# Kill the last shard: zero healthy shards means not ready, while the
# coordinator process itself stays live.
kill -9 "$S0_PID"
ready=""
for _ in $(seq 1 50); do
  code=$(curl -s -o /dev/null -w '%{http_code}' "$BASE/readyz")
  if [[ "$code" == "503" ]]; then ready=dark; break; fi
  sleep 0.1
done
[[ "$ready" == "dark" ]] || fail "coordinator readyz never flipped to 503 with zero healthy shards"
curl -sf "$BASE/healthz" >/dev/null || fail "coordinator healthz must stay 200 (liveness != readiness)"

# Graceful shutdown: the coordinator drains and exits 0 (both shards are
# already gone, so only it remains).
kill -TERM "$CO_PID"
wait "$CO_PID" || fail "coordinator exited non-zero on SIGTERM"
PIDS=()

echo "cluster-smoke: OK"
