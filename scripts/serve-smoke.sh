#!/usr/bin/env bash
# End-to-end smoke test of the serving subsystem against a real binary:
# start gsketch-serve, NDJSON-ingest a small stream, issue a batched query,
# trigger a snapshot, restore it, and shut down gracefully. CI runs this
# with a race-instrumented build.
set -euo pipefail

BIN=${1:-bin/gsketch-serve}
WIRECLI=${2:-bin/gsketch-wire}
ADDR=${SMOKE_ADDR:-127.0.0.1:7171}
WADDR=${SMOKE_WIRE_ADDR:-127.0.0.1:7172}
BASE="http://$ADDR"
TMP=$(mktemp -d)
PID=""

cleanup() {
  if [[ -n "$PID" ]] && kill -0 "$PID" 2>/dev/null; then
    kill -9 "$PID" 2>/dev/null || true
  fi
  rm -rf "$TMP"
}
trap cleanup EXIT

fail() { echo "serve-smoke: FAIL: $*" >&2; exit 1; }

# A small partitioning sample: hub sources with repeated edges.
for i in $(seq 0 199); do
  echo "$((i % 10)) $((100 + i % 40)) 1 $i"
done > "$TMP/sample.txt"

"$BIN" -addr "$ADDR" -wire-addr "$WADDR" -sample "$TMP/sample.txt" \
  -snapshot "$TMP/state.gsk" -workers 2 -batch 64 &
PID=$!

# Wait for liveness.
for _ in $(seq 1 100); do
  if curl -sf "$BASE/healthz" >/dev/null 2>&1; then break; fi
  kill -0 "$PID" 2>/dev/null || fail "server exited during startup"
  sleep 0.1
done
curl -sf "$BASE/healthz" >/dev/null || fail "server never became healthy"

# NDJSON-ingest: edge (1,101) five times, (2,102) three times.
{
  for _ in 1 2 3 4 5; do echo '{"src":1,"dst":101}'; done
  for _ in 1 2 3; do echo '{"src":2,"dst":102,"weight":1}'; done
} > "$TMP/stream.ndjson"
ingest=$(curl -sf -X POST --data-binary @"$TMP/stream.ndjson" "$BASE/ingest?sync=1")
grep -q '"accepted":8' <<<"$ingest" || fail "ingest reply: $ingest"

# Batched query with read-your-writes: both estimates must come back with
# bounds attached (CountMin never underestimates, so ≥ the true counts).
query='{"queries":[{"src":1,"dst":101},{"src":2,"dst":102}],"sync":true}'
answer=$(curl -sf -X POST -H 'Content-Type: application/json' -d "$query" "$BASE/query")
est1=$(grep -o '"estimate":[0-9]*' <<<"$answer" | head -1 | cut -d: -f2)
est2=$(grep -o '"estimate":[0-9]*' <<<"$answer" | sed -n 2p | cut -d: -f2)
[[ -n "$est1" && "$est1" -ge 5 ]] || fail "estimate for (1,101) = '$est1', want >= 5 ($answer)"
[[ -n "$est2" && "$est2" -ge 3 ]] || fail "estimate for (2,102) = '$est2', want >= 3 ($answer)"
grep -q '"error_bound"' <<<"$answer" || fail "no error bound in $answer"
grep -q '"confidence"' <<<"$answer" || fail "no confidence in $answer"

# Snapshot: save to disk, then restore it back in.
save=$(curl -sf -X POST "$BASE/snapshot/save")
[[ -s "$TMP/state.gsk" ]] || fail "snapshot file missing after save: $save"
restore=$(curl -sf -X POST "$BASE/snapshot/restore")
grep -q '"stream_total":8' <<<"$restore" || fail "restore reply: $restore"

# The restored server answers the same query identically.
answer2=$(curl -sf -X POST -H 'Content-Type: application/json' -d "$query" "$BASE/query")
[[ "$answer2" == "$answer" ]] || fail "answers differ after restore: $answer vs $answer2"

# Stats carry the counters.
stats=$(curl -sf "$BASE/stats")
grep -q '"edges_accepted":8' <<<"$stats" || fail "stats: $stats"
grep -q '"snapshots_saved":1' <<<"$stats" || fail "stats: $stats"

# ---------------------------------------------------------------------------
# Observability surface: /metrics is Prometheus text exposition derived
# from the same registry as /stats, and /readyz tracks state swaps.

curl -sf "$BASE/readyz" >/dev/null || fail "readyz not 200 on an idle server"
metrics=$(curl -sf "$BASE/metrics")
grep -q '^# HELP gsketch_edges_accepted_total ' <<<"$metrics" || fail "metrics missing HELP: $metrics"
grep -q '^# TYPE gsketch_edges_accepted_total counter' <<<"$metrics" || fail "metrics missing TYPE"
grep -q '^gsketch_edges_accepted_total 8$' <<<"$metrics" || fail "metrics counter disagrees with /stats"
grep -q '^# TYPE gsketch_http_request_duration_seconds histogram' <<<"$metrics" || fail "metrics missing route histogram"
grep -q 'gsketch_http_request_duration_seconds_bucket{route="POST /ingest",le="+Inf"}' <<<"$metrics" \
  || fail "route histogram missing +Inf terminal bucket"
grep -q '^gsketch_ready 1$' <<<"$metrics" || fail "gsketch_ready gauge not 1"

# Readiness flips during a restore: stream the snapshot body through a
# FIFO so the swap window stays open while we poll /readyz.
mkfifo "$TMP/slow-restore"
curl -s -o "$TMP/restore-reply" -X POST -T "$TMP/slow-restore" \
  -H 'Content-Type: application/octet-stream' "$BASE/snapshot/restore" &
CURL_PID=$!
exec 9>"$TMP/slow-restore" # hold the writer open, send nothing yet
flipped=""
for _ in $(seq 1 100); do
  code=$(curl -s -o /dev/null -w '%{http_code}' "$BASE/readyz")
  if [[ "$code" == "503" ]]; then flipped=1; break; fi
  sleep 0.05
done
[[ -n "$flipped" ]] || fail "readyz never flipped to 503 during a streaming restore"
curl -sf "$BASE/healthz" >/dev/null || fail "healthz must stay 200 during restore"
cat "$TMP/state.gsk" >&9
exec 9>&-
wait "$CURL_PID" || fail "streaming restore failed: $(cat "$TMP/restore-reply")"
grep -q '"stream_total":8' "$TMP/restore-reply" || fail "streaming restore reply: $(cat "$TMP/restore-reply")"
curl -sf "$BASE/readyz" >/dev/null || fail "readyz not back to 200 after restore"

# ---------------------------------------------------------------------------
# Binary wire protocol against the same server: ingest two more copies of
# (1,101) and one of (2,102) over TCP, query them back, snapshot the mixed
# state and restore it.

printf '1 101 1 0\n1 101 1 1\n2 102 1 2\n' > "$TMP/wire-stream.txt"
wi=$("$WIRECLI" -addr "$WADDR" ingest "$TMP/wire-stream.txt")
grep -q 'ingested 3 edges' <<<"$wi" || fail "wire ingest reply: $wi"

# (1,101) now has 5 NDJSON + 2 wire arrivals; the wire answer carries
# "src dst estimate error_bound confidence partition".
wq=$("$WIRECLI" -addr "$WADDR" query 1 101)
west=$(awk '{print $3}' <<<"$wq")
[[ -n "$west" && "$west" -ge 7 ]] || fail "wire estimate for (1,101) = '$west', want >= 7 ($wq)"
awk '{exit !($4 > 0 && $5 > 0)}' <<<"$wq" || fail "wire answer missing bounds: $wq"

# Snapshot the mixed JSON+wire state and restore it; the wire answer must
# not change.
curl -sf -X POST "$BASE/snapshot/save" >/dev/null
restore=$(curl -sf -X POST "$BASE/snapshot/restore")
grep -q '"stream_total":11' <<<"$restore" || fail "post-wire restore reply: $restore"
wq2=$("$WIRECLI" -addr "$WADDR" query 1 101)
[[ "$wq2" == "$wq" ]] || fail "wire answers differ after restore: $wq vs $wq2"

# Wire counters surface in /stats.
stats=$(curl -sf "$BASE/stats")
grep -q '"wire_decode_errors":0' <<<"$stats" || fail "wire stats: $stats"
grep -Eq '"wire_frames":[1-9]' <<<"$stats" || fail "wire stats: $stats"
grep -Eq '"wire_bytes_in":[1-9]' <<<"$stats" || fail "wire stats: $stats"
grep -Eq '"wire_bytes_out":[1-9]' <<<"$stats" || fail "wire stats: $stats"

# Graceful shutdown: SIGTERM must drain and exit 0.
kill -TERM "$PID"
if ! wait "$PID"; then
  fail "server exited non-zero on SIGTERM"
fi
PID=""

# ---------------------------------------------------------------------------
# Adaptive chain flow: ingest -> workload shift -> POST /repartition ->
# query -> snapshot -> restore of a multi-generation chain.

"$BIN" -addr "$ADDR" -adapt -sample "$TMP/sample.txt" -snapshot "$TMP/chain.gsk" \
  -workers 2 -batch 64 &
PID=$!
for _ in $(seq 1 100); do
  if curl -sf "$BASE/healthz" >/dev/null 2>&1; then break; fi
  kill -0 "$PID" 2>/dev/null || fail "adaptive server exited during startup"
  sleep 0.1
done
curl -sf "$BASE/healthz" >/dev/null || fail "adaptive server never became healthy"

# Ingest known-source traffic, then a burst from sources the partitioning
# sample never saw — the drifted stream the next generation must cover.
{
  for _ in 1 2 3 4 5; do echo '{"src":1,"dst":101}'; done
  for _ in 1 2 3 4; do echo '{"src":500,"dst":7}'; done
} > "$TMP/shifted.ndjson"
ingest=$(curl -sf -X POST --data-binary @"$TMP/shifted.ndjson" "$BASE/ingest?sync=1")
grep -q '"accepted":9' <<<"$ingest" || fail "adaptive ingest reply: $ingest"

# Shifted query workload: hammer the unknown source so the recorder sample
# diverges from the build-time baseline.
shiftq='{"queries":[{"src":500,"dst":7},{"src":500,"dst":8}],"sync":true}'
for _ in 1 2 3 4 5; do
  curl -sf -X POST -H 'Content-Type: application/json' -d "$shiftq" "$BASE/query" >/dev/null
done

# On-demand repartition: a second generation hot-swaps in.
repart=$(curl -sf -X POST "$BASE/repartition")
grep -q '"generations":2' <<<"$repart" || fail "repartition reply: $repart"

# Post-swap, answers still cover the pre-swap stream (generations sum):
# edge (1,101) was ingested before the swap and must still estimate >= 5.
q='{"queries":[{"src":1,"dst":101},{"src":500,"dst":7}],"sync":true}'
ans=$(curl -sf -X POST -H 'Content-Type: application/json' -d "$q" "$BASE/query")
est=$(grep -o '"estimate":[0-9]*' <<<"$ans" | head -1 | cut -d: -f2)
[[ -n "$est" && "$est" -ge 5 ]] || fail "post-swap estimate for (1,101) = '$est', want >= 5 ($ans)"

# Ingest through the new head, then snapshot the full chain and restore it.
echo '{"src":500,"dst":7}' | curl -sf -X POST --data-binary @- "$BASE/ingest?sync=1" >/dev/null
curl -sf -X POST "$BASE/snapshot/save" >/dev/null
[[ -s "$TMP/chain.gsk" ]] || fail "chain snapshot missing after save"
restore=$(curl -sf -X POST "$BASE/snapshot/restore")
grep -q '"generations":2' <<<"$restore" || fail "chain restore reply: $restore"
grep -q '"stream_total":10' <<<"$restore" || fail "chain restore total: $restore"

# The restored chain answers identically, and /stats reports the chain.
ans2=$(curl -sf -X POST -H 'Content-Type: application/json' -d "$q" "$BASE/query")
est2=$(grep -o '"estimate":[0-9]*' <<<"$ans2" | head -1 | cut -d: -f2)
[[ "$est2" == "$est" ]] || fail "answers differ after chain restore: $est vs $est2"
stats=$(curl -sf "$BASE/stats")
grep -q '"generations":2' <<<"$stats" || fail "adaptive stats: $stats"
grep -q '"repartition_requests":1' <<<"$stats" || fail "adaptive stats: $stats"

kill -TERM "$PID"
if ! wait "$PID"; then
  fail "adaptive server exited non-zero on SIGTERM"
fi
PID=""

# ---------------------------------------------------------------------------
# Generation lifecycle: pivot twice to a three-generation chain with cold
# generations tiered to disk, fold the two oldest via POST /compact, and
# verify answers, gauges and the snapshot round-trip. The compaction flags
# mount the background manager; the long interval keeps its ticker idle so
# the on-demand fold is the one observed.

"$BIN" -addr "$ADDR" -adapt -sample "$TMP/sample.txt" -snapshot "$TMP/lifecycle.gsk" \
  -compact-max-gens 8 -compact-interval 1h -tier-dir "$TMP/tiers" -tier-resident 1 \
  -workers 2 -batch 64 &
PID=$!
for _ in $(seq 1 100); do
  if curl -sf "$BASE/healthz" >/dev/null 2>&1; then break; fi
  kill -0 "$PID" 2>/dev/null || fail "lifecycle server exited during startup"
  sleep 0.1
done
curl -sf "$BASE/healthz" >/dev/null || fail "lifecycle server never became healthy"

# Three phases split by two pivots; the same edge keeps arriving so the
# folded chain must still sum every phase's contribution.
for phase in 1 2 3; do
  {
    for _ in 1 2 3 4; do echo '{"src":1,"dst":101}'; done
    echo "{\"src\":$((600 + phase)),\"dst\":9}"
  } | curl -sf -X POST --data-binary @- "$BASE/ingest?sync=1" >/dev/null
  if [[ "$phase" != "3" ]]; then
    repart=$(curl -sf -X POST "$BASE/repartition")
    grep -q "\"generations\":$((phase + 1))" <<<"$repart" || fail "lifecycle pivot $phase: $repart"
  fi
done

# Under -tier-resident 1 the second frozen generation spills to disk.
stats=$(curl -sf "$BASE/stats")
grep -Eq '"tiered_generations":[1-9]' <<<"$stats" || fail "no tiered generations before compact: $stats"
grep -Eq '"tiered_bytes":[1-9]' <<<"$stats" || fail "no tiered bytes before compact: $stats"

# Fold the two oldest frozen generations: 3 -> 2.
compact=$(curl -sf -X POST "$BASE/compact")
grep -q '"folded":2' <<<"$compact" || fail "compact reply: $compact"
grep -q '"generations":2' <<<"$compact" || fail "compact reply: $compact"

# The folded chain still covers all three phases: (1,101) arrived 12 times.
q='{"queries":[{"src":1,"dst":101}],"sync":true}'
ans=$(curl -sf -X POST -H 'Content-Type: application/json' -d "$q" "$BASE/query")
est=$(grep -o '"estimate":[0-9]*' <<<"$ans" | head -1 | cut -d: -f2)
[[ -n "$est" && "$est" -ge 12 ]] || fail "post-compact estimate for (1,101) = '$est', want >= 12 ($ans)"

# Lifecycle gauges surface in /stats.
stats=$(curl -sf "$BASE/stats")
grep -q '"compactions":1' <<<"$stats" || fail "lifecycle stats: $stats"
grep -q '"compacted_from":3' <<<"$stats" || fail "lifecycle stats: $stats"
grep -q '"resident_generations"' <<<"$stats" || fail "lifecycle stats: $stats"

# Snapshot the folded chain and restore it: lineage and answers survive.
curl -sf -X POST "$BASE/snapshot/save" >/dev/null
[[ -s "$TMP/lifecycle.gsk" ]] || fail "lifecycle snapshot missing after save"
restore=$(curl -sf -X POST "$BASE/snapshot/restore")
grep -q '"generations":2' <<<"$restore" || fail "lifecycle restore reply: $restore"
ans2=$(curl -sf -X POST -H 'Content-Type: application/json' -d "$q" "$BASE/query")
est2=$(grep -o '"estimate":[0-9]*' <<<"$ans2" | head -1 | cut -d: -f2)
[[ "$est2" == "$est" ]] || fail "answers differ after lifecycle restore: $est vs $est2"

kill -TERM "$PID"
if ! wait "$PID"; then
  fail "lifecycle server exited non-zero on SIGTERM"
fi
PID=""

echo "serve-smoke: OK"
