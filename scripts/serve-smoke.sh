#!/usr/bin/env bash
# End-to-end smoke test of the serving subsystem against a real binary:
# start gsketch-serve, NDJSON-ingest a small stream, issue a batched query,
# trigger a snapshot, restore it, and shut down gracefully. CI runs this
# with a race-instrumented build.
set -euo pipefail

BIN=${1:-bin/gsketch-serve}
ADDR=${SMOKE_ADDR:-127.0.0.1:7171}
BASE="http://$ADDR"
TMP=$(mktemp -d)
PID=""

cleanup() {
  if [[ -n "$PID" ]] && kill -0 "$PID" 2>/dev/null; then
    kill -9 "$PID" 2>/dev/null || true
  fi
  rm -rf "$TMP"
}
trap cleanup EXIT

fail() { echo "serve-smoke: FAIL: $*" >&2; exit 1; }

# A small partitioning sample: hub sources with repeated edges.
for i in $(seq 0 199); do
  echo "$((i % 10)) $((100 + i % 40)) 1 $i"
done > "$TMP/sample.txt"

"$BIN" -addr "$ADDR" -sample "$TMP/sample.txt" -snapshot "$TMP/state.gsk" \
  -workers 2 -batch 64 &
PID=$!

# Wait for liveness.
for _ in $(seq 1 100); do
  if curl -sf "$BASE/healthz" >/dev/null 2>&1; then break; fi
  kill -0 "$PID" 2>/dev/null || fail "server exited during startup"
  sleep 0.1
done
curl -sf "$BASE/healthz" >/dev/null || fail "server never became healthy"

# NDJSON-ingest: edge (1,101) five times, (2,102) three times.
{
  for _ in 1 2 3 4 5; do echo '{"src":1,"dst":101}'; done
  for _ in 1 2 3; do echo '{"src":2,"dst":102,"weight":1}'; done
} > "$TMP/stream.ndjson"
ingest=$(curl -sf -X POST --data-binary @"$TMP/stream.ndjson" "$BASE/ingest?sync=1")
grep -q '"accepted":8' <<<"$ingest" || fail "ingest reply: $ingest"

# Batched query with read-your-writes: both estimates must come back with
# bounds attached (CountMin never underestimates, so ≥ the true counts).
query='{"queries":[{"src":1,"dst":101},{"src":2,"dst":102}],"sync":true}'
answer=$(curl -sf -X POST -H 'Content-Type: application/json' -d "$query" "$BASE/query")
est1=$(grep -o '"estimate":[0-9]*' <<<"$answer" | head -1 | cut -d: -f2)
est2=$(grep -o '"estimate":[0-9]*' <<<"$answer" | sed -n 2p | cut -d: -f2)
[[ -n "$est1" && "$est1" -ge 5 ]] || fail "estimate for (1,101) = '$est1', want >= 5 ($answer)"
[[ -n "$est2" && "$est2" -ge 3 ]] || fail "estimate for (2,102) = '$est2', want >= 3 ($answer)"
grep -q '"error_bound"' <<<"$answer" || fail "no error bound in $answer"
grep -q '"confidence"' <<<"$answer" || fail "no confidence in $answer"

# Snapshot: save to disk, then restore it back in.
save=$(curl -sf -X POST "$BASE/snapshot/save")
[[ -s "$TMP/state.gsk" ]] || fail "snapshot file missing after save: $save"
restore=$(curl -sf -X POST "$BASE/snapshot/restore")
grep -q '"stream_total":8' <<<"$restore" || fail "restore reply: $restore"

# The restored server answers the same query identically.
answer2=$(curl -sf -X POST -H 'Content-Type: application/json' -d "$query" "$BASE/query")
[[ "$answer2" == "$answer" ]] || fail "answers differ after restore: $answer vs $answer2"

# Stats carry the counters.
stats=$(curl -sf "$BASE/stats")
grep -q '"edges_accepted":8' <<<"$stats" || fail "stats: $stats"
grep -q '"snapshots_saved":1' <<<"$stats" || fail "stats: $stats"

# Graceful shutdown: SIGTERM must drain and exit 0.
kill -TERM "$PID"
if ! wait "$PID"; then
  fail "server exited non-zero on SIGTERM"
fi
PID=""

echo "serve-smoke: OK"
