#!/usr/bin/env bash
# End-to-end smoke test of the multi-tenant serving mode against a real
# binary: admin API lifecycle, per-tenant ingest/query isolation, quota
# enforcement without cross-tenant shed, the wire tenant-select flow,
# tenant-labeled metrics, then a restart under a resident cap of one to
# force snapshot-eviction and transparent reopen. CI runs this with a
# race-instrumented build.
set -euo pipefail

BIN=${1:-bin/gsketch-serve}
WIRECLI=${2:-bin/gsketch-wire}
ADDR=${SMOKE_ADDR:-127.0.0.1:7271}
WADDR=${SMOKE_WIRE_ADDR:-127.0.0.1:7272}
BASE="http://$ADDR"
TMP=$(mktemp -d)
PID=""

cleanup() {
  if [[ -n "$PID" ]] && kill -0 "$PID" 2>/dev/null; then
    kill -9 "$PID" 2>/dev/null || true
  fi
  rm -rf "$TMP"
}
trap cleanup EXIT

fail() { echo "tenant-smoke: FAIL: $*" >&2; exit 1; }

wait_healthy() {
  for _ in $(seq 1 100); do
    if curl -sf "$BASE/healthz" >/dev/null 2>&1; then return 0; fi
    kill -0 "$PID" 2>/dev/null || fail "server exited during startup"
    sleep 0.1
  done
  fail "server never became healthy"
}

# ---------------------------------------------------------------------------
# Phase 1: uncapped registry — admin API, isolation, quotas, wire select.

"$BIN" -addr "$ADDR" -wire-addr "$WADDR" -tenants -tenant-dir "$TMP/tenants" \
  -workers 2 -batch 64 &
PID=$!
wait_healthy

# Admin lifecycle: create twice (201 then 200 idempotent update), list, 404.
code=$(curl -s -o "$TMP/put1" -w '%{http_code}' -X PUT "$BASE/t/alpha")
[[ "$code" == "201" ]] || fail "PUT /t/alpha: $code $(cat "$TMP/put1")"
code=$(curl -s -o /dev/null -w '%{http_code}' -X PUT "$BASE/t/alpha")
[[ "$code" == "200" ]] || fail "re-PUT /t/alpha: $code, want 200 update"
curl -sf -X PUT "$BASE/t/beta" >/dev/null || fail "PUT /t/beta"
list=$(curl -sf "$BASE/t")
grep -q '"name":"alpha"' <<<"$list" || fail "list missing alpha: $list"
grep -q '"name":"beta"' <<<"$list" || fail "list missing beta: $list"
code=$(curl -s -o "$TMP/ghost" -w '%{http_code}' "$BASE/t/ghost")
[[ "$code" == "404" ]] || fail "GET /t/ghost: $code"
grep -q '"code":"tenant_not_found"' "$TMP/ghost" || fail "ghost body: $(cat "$TMP/ghost")"

# Bad tenant names are rejected, not created.
code=$(curl -s -o /dev/null -w '%{http_code}' -X PUT "$BASE/t/bad%20name")
[[ "$code" == "400" ]] || fail "PUT bad name: $code, want 400"

# Isolation: alpha sees (1,101) five times, beta sees (2,202) three times.
for _ in 1 2 3 4 5; do echo '{"src":1,"dst":101}'; done > "$TMP/alpha.ndjson"
for _ in 1 2 3; do echo '{"src":2,"dst":202}'; done > "$TMP/beta.ndjson"
ingest=$(curl -sf -X POST --data-binary @"$TMP/alpha.ndjson" "$BASE/t/alpha/ingest?sync=1")
grep -q '"accepted":5' <<<"$ingest" || fail "alpha ingest: $ingest"
ingest=$(curl -sf -X POST --data-binary @"$TMP/beta.ndjson" "$BASE/t/beta/ingest?sync=1")
grep -q '"accepted":3' <<<"$ingest" || fail "beta ingest: $ingest"

q_alpha='{"queries":[{"src":1,"dst":101}],"sync":true}'
q_beta='{"queries":[{"src":2,"dst":202}],"sync":true}'
est() { grep -o '"estimate":[0-9]*' <<<"$1" | head -1 | cut -d: -f2; }
ans=$(curl -sf -X POST -H 'Content-Type: application/json' -d "$q_alpha" "$BASE/t/alpha/query")
[[ "$(est "$ans")" -ge 5 ]] || fail "alpha estimate: $ans"
# Beta never saw alpha's edge: its estimate must be 0, not 5.
ans=$(curl -sf -X POST -H 'Content-Type: application/json' -d "$q_alpha" "$BASE/t/beta/query")
[[ "$(est "$ans")" == "0" ]] || fail "cross-tenant bleed into beta: $ans"
ans=$(curl -sf -X POST -H 'Content-Type: application/json' -d "$q_beta" "$BASE/t/beta/query")
[[ "$(est "$ans")" -ge 3 ]] || fail "beta estimate: $ans"

# Data-path requests against unknown tenants are typed 404s.
code=$(curl -s -o "$TMP/g404" -w '%{http_code}' -X POST \
  -H 'Content-Type: application/json' -d "$q_alpha" "$BASE/t/ghost/query")
[[ "$code" == "404" ]] || fail "query unknown tenant: $code"
grep -q '"code":"tenant_not_found"' "$TMP/g404" || fail "unknown-tenant body: $(cat "$TMP/g404")"

# Quotas: a nearly-zero refill rate with burst 2 accepts exactly the
# two-edge prefix and cuts the rest with a 429 — while alpha's traffic
# keeps flowing untouched.
curl -sf -X PUT -d '{"max_edges_per_sec":0.001,"burst":2}' "$BASE/t/limited" >/dev/null \
  || fail "PUT /t/limited"
for _ in 1 2 3 4 5 6 7 8 9 10; do echo '{"src":3,"dst":303}'; done > "$TMP/limited.ndjson"
code=$(curl -s -o "$TMP/shed" -w '%{http_code}' -X POST \
  --data-binary @"$TMP/limited.ndjson" "$BASE/t/limited/ingest?sync=1")
[[ "$code" == "429" ]] || fail "over-quota ingest: $code $(cat "$TMP/shed")"
grep -q '"accepted":2' "$TMP/shed" || fail "accepted prefix: $(cat "$TMP/shed")"
grep -q '"code":"rate_limited"' "$TMP/shed" || fail "shed body: $(cat "$TMP/shed")"
ingest=$(curl -sf -X POST --data-binary @"$TMP/alpha.ndjson" "$BASE/t/alpha/ingest?sync=1")
grep -q '"accepted":5' <<<"$ingest" || fail "alpha shed by limited's quota: $ingest"

# Wire protocol: work before a tenant-select is refused; after selecting,
# each connection is bound to its tenant's engine.
if "$WIRECLI" -addr "$WADDR" ping >/dev/null 2>&1; then
  fail "wire ping without tenant-select must fail"
fi
wq=$("$WIRECLI" -addr "$WADDR" -tenant alpha query 1 101)
[[ "$(awk '{print $3}' <<<"$wq")" -ge 10 ]] || fail "wire alpha estimate: $wq"
wq=$("$WIRECLI" -addr "$WADDR" -tenant beta query 1 101)
[[ "$(awk '{print $3}' <<<"$wq")" == "0" ]] || fail "wire cross-tenant bleed: $wq"
if "$WIRECLI" -addr "$WADDR" -tenant ghost ping >/dev/null 2>&1; then
  fail "wire select of unknown tenant must fail"
fi

# Tenant-labeled metrics and the registry /stats block.
metrics=$(curl -sf "$BASE/metrics")
grep -q '^gsketch_tenants 3$' <<<"$metrics" || fail "gsketch_tenants gauge: $metrics"
grep -q 'gsketch_tenant_edges_accepted_total{tenant="alpha"} 10' <<<"$metrics" \
  || fail "alpha labeled counter missing"
grep -q 'gsketch_tenant_rate_limited_total{tenant="limited"} ' <<<"$metrics" \
  || fail "limited rate-limit counter missing"
stats=$(curl -sf "$BASE/stats")
grep -q '"tenants":3' <<<"$stats" || fail "stats: $stats"

kill -TERM "$PID"
wait "$PID" || fail "server exited non-zero on SIGTERM"
PID=""

# ---------------------------------------------------------------------------
# Phase 2: restart over the same directory with a resident cap of one —
# the tenant set persists, cross-tenant access churns evict/reopen, and
# answers survive the round trips byte-identically.

"$BIN" -addr "$ADDR" -tenants -tenant-dir "$TMP/tenants" -tenant-max-resident 1 \
  -workers 2 -batch 64 &
PID=$!
wait_healthy

list=$(curl -sf "$BASE/t")
grep -q '"name":"limited"' <<<"$list" || fail "tenant set lost on restart: $list"

ans1=$(curl -sf -X POST -H 'Content-Type: application/json' -d "$q_alpha" "$BASE/t/alpha/query")
[[ "$(est "$ans1")" -ge 10 ]] || fail "alpha estimate after restart: $ans1"
# Touching beta under cap 1 evicts alpha to its snapshot.
ans=$(curl -sf -X POST -H 'Content-Type: application/json' -d "$q_beta" "$BASE/t/beta/query")
[[ "$(est "$ans")" -ge 3 ]] || fail "beta estimate after restart: $ans"
[[ -s "$TMP/tenants/alpha/gsketch.snap" ]] || fail "alpha snapshot missing after eviction"
stats=$(curl -sf "$BASE/stats")
grep -Eq '"tenant_evictions":[1-9]' <<<"$stats" || fail "no evictions recorded: $stats"
# First access after eviction transparently reopens with identical answers.
ans2=$(curl -sf -X POST -H 'Content-Type: application/json' -d "$q_alpha" "$BASE/t/alpha/query")
[[ "$ans2" == "$ans1" ]] || fail "alpha answers differ after evict/reopen: $ans1 vs $ans2"
stats=$(curl -sf "$BASE/stats")
grep -Eq '"tenant_reopens":[1-9]' <<<"$stats" || fail "no reopens recorded: $stats"

# Delete drops the tenant and its on-disk state.
curl -sf -X DELETE "$BASE/t/beta" >/dev/null || fail "DELETE /t/beta"
code=$(curl -s -o /dev/null -w '%{http_code}' "$BASE/t/beta")
[[ "$code" == "404" ]] || fail "GET deleted tenant: $code"
[[ ! -e "$TMP/tenants/beta" ]] || fail "beta directory survived delete"

kill -TERM "$PID"
wait "$PID" || fail "server exited non-zero on SIGTERM"
PID=""

echo "tenant-smoke: OK"
